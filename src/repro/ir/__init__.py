"""Mathematical intermediate representation (operands, expressions, programs).

This package is the common currency between the LA frontend, the Cl1ck-style
algorithm synthesis (Stage 1), and the LGen-style sBLAC lowering (Stage 2).
"""

from .expr import (Add, Const, Div, Expr, Inverse, Mul, Neg, Ref, Sqrt, Sub,
                   Transpose, flatten_add, flatten_mul, ref)
from .operands import IOType, Matrix, Operand, Scalar, Vector, View
from .program import Assign, Equation, ForLoop, Program, Statement
from .properties import (Properties, StorageHalf, Structure, add_structure,
                         mul_structure, transpose_structure)

__all__ = [
    "Add", "Const", "Div", "Expr", "Inverse", "Mul", "Neg", "Ref", "Sqrt",
    "Sub", "Transpose", "flatten_add", "flatten_mul", "ref",
    "IOType", "Matrix", "Operand", "Scalar", "Vector", "View",
    "Assign", "Equation", "ForLoop", "Program", "Statement",
    "Properties", "StorageHalf", "Structure", "add_structure",
    "mul_structure", "transpose_structure",
]
