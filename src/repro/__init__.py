"""repro -- a from-scratch reproduction of SLinGen (Spampinato et al., CGO 2018).

"Program Generation for Small-Scale Linear Algebra Applications": a program
generator that compiles applications written in a small linear-algebra DSL
(LA) into optimized single-source C code (optionally with AVX intrinsics).

Quickstart::

    from repro import SLinGen, Options
    from repro.la import parse_program

    prog = parse_program(source, constants={"n": 8})
    result = SLinGen(Options(vectorize=True)).generate(prog)
    print(result.c_code)               # single-source C with intrinsics
    outputs = result.run(inputs)       # execute via the C-IR interpreter
    print(result.performance.summary())
"""

from .errors import ReproError
from .slingen.generator import GeneratedCode, SLinGen, generate
from .slingen.options import Options

__version__ = "1.0.0"

__all__ = ["ReproError", "GeneratedCode", "SLinGen", "generate", "Options",
           "__version__"]
