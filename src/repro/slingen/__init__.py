"""SLinGen driver: options, Stage 1/2/3 orchestration, autotuning."""

from .generator import (Candidate, GeneratedCode, GenerationResult, SLinGen,
                        generate)
from .options import Options
from .rewrite import (RewriteReport, apply_rewrite_rules, apply_rule_r0,
                      apply_rule_r1)
from .stage1 import (HlacSite, Stage1Result, enumerate_variant_choices,
                     find_hlac_sites, synthesize_basic_program)

__all__ = [
    "Candidate", "GeneratedCode", "GenerationResult", "SLinGen", "generate",
    "Options",
    "RewriteReport", "apply_rewrite_rules", "apply_rule_r0", "apply_rule_r1",
    "HlacSite", "Stage1Result", "enumerate_variant_choices",
    "find_hlac_sites", "synthesize_basic_program",
]
