"""Stage-2 rewriting rules that expose more nu-BLACs (paper Table 2).

Two rules are implemented:

* **R0** packs neighboring scalar divisions by a common divisor into a
  single element-wise division of a short row vector by that scalar
  (superword-level-parallelism style packing).
* **R1** turns an element-wise division of a vector by a scalar into a
  scalar reciprocal followed by a scaling:
  ``x = b / lambda  ->  tau = 1/lambda; x = tau * b``.

The Stage-1 synthesizer already emits most codelets directly in R1 form; the
rules still run over the basic program so that user-written LA statements
(and the unit tests mirroring Table 2) benefit from the same treatment.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir.expr import Const, Div, Expr, Mul, Ref
from ..ir.operands import IOType, Operand, View
from ..ir.program import Assign, Program, Statement
from ..ir.properties import Properties


@dataclass
class RewriteReport:
    """How many times each rule fired (used by tests and the ablation bench)."""

    r0_applications: int = 0
    r1_applications: int = 0


class _TempFactory:
    def __init__(self, program: Program, prefix: str = "rw"):
        self.program = program
        self.prefix = prefix
        self.counter = itertools.count()

    def scalar(self) -> View:
        operand = Operand(f"{self.prefix}_t{next(self.counter)}", 1, 1,
                          IOType.OUT, Properties())
        self.program.declare(operand)
        return operand.full_view()


def _match_scalar_division(statement: Statement) -> Optional[Tuple[View, Expr, Expr]]:
    """Match ``chi = beta / lambda`` with everything scalar."""
    if not isinstance(statement, Assign) or not statement.lhs.is_scalar:
        return None
    if not isinstance(statement.rhs, Div):
        return None
    numerator, divisor = statement.rhs.left, statement.rhs.right
    if not numerator.is_scalar or not divisor.is_scalar:
        return None
    return statement.lhs, numerator, divisor


def _adjacent_in_row(first: View, second: View) -> bool:
    """True when ``second`` is the element immediately right of ``first``."""
    return (first.operand is second.operand
            and first.row_off == second.row_off
            and second.col_off == first.col_off + 1)


def apply_rule_r0(program: Program) -> RewriteReport:
    """Pack neighboring scalar divisions into vector divisions (rule R0).

    Two consecutive statements ``chi0 = beta0/lambda`` and
    ``chi1 = beta1/lambda`` whose destinations (and numerators) are adjacent
    elements of the same matrix row, with the same divisor, are merged into
    one statement ``x = b / lambda`` on 1x2 row views (and the merge cascades
    for longer runs).
    """
    report = RewriteReport()
    statements = program.statements
    result: List[Statement] = []
    index = 0
    while index < len(statements):
        match = _match_scalar_division(statements[index])
        if match is None:
            result.append(statements[index])
            index += 1
            continue
        dest, numerator, divisor = match
        run_dests = [dest]
        run_numerators = [numerator]
        cursor = index + 1
        while cursor < len(statements):
            nxt = _match_scalar_division(statements[cursor])
            if nxt is None:
                break
            nxt_dest, nxt_num, nxt_div = nxt
            if not (nxt_div == divisor
                    and isinstance(nxt_num, Ref)
                    and isinstance(run_numerators[-1], Ref)
                    and _adjacent_in_row(run_dests[-1], nxt_dest)
                    and _adjacent_in_row(run_numerators[-1].view,
                                         nxt_num.view)):
                break
            run_dests.append(nxt_dest)
            run_numerators.append(nxt_num)
            cursor += 1
        if len(run_dests) >= 2:
            width = len(run_dests)
            packed_dest = run_dests[0].operand.view(
                run_dests[0].row_off, run_dests[0].col_off, 1, width)
            first_num = run_numerators[0]
            assert isinstance(first_num, Ref)
            packed_num = first_num.view.operand.view(
                first_num.view.row_off, first_num.view.col_off, 1, width)
            result.append(Assign(packed_dest, Div(Ref(packed_num), divisor)))
            report.r0_applications += 1
            index = cursor
        else:
            result.append(statements[index])
            index += 1
    program.statements = result
    return report


def apply_rule_r1(program: Program) -> RewriteReport:
    """Turn vector/scalar divisions into reciprocal + scaling (rule R1)."""
    report = RewriteReport()
    temps = _TempFactory(program)
    result: List[Statement] = []
    for statement in program.statements:
        if isinstance(statement, Assign) and isinstance(statement.rhs, Div) \
                and not statement.lhs.is_scalar \
                and statement.rhs.right.is_scalar:
            tau = temps.scalar()
            result.append(Assign(tau, Div(Const(1.0), statement.rhs.right)))
            result.append(Assign(statement.lhs,
                                 Mul(Ref(tau), statement.rhs.left)))
            report.r1_applications += 1
        else:
            result.append(statement)
    program.statements = result
    return report


def apply_rewrite_rules(program: Program) -> RewriteReport:
    """Run R0 followed by R1 on a basic program (in place)."""
    report_r0 = apply_rule_r0(program)
    report_r1 = apply_rule_r1(program)
    return RewriteReport(r0_applications=report_r0.r0_applications,
                         r1_applications=report_r1.r1_applications)
