"""The SLinGen program generator (paper Sec. 3, Fig. 6).

``SLinGen.generate(program)`` runs the full pipeline:

1. **Stage 1** -- every HLAC is expanded into a loop-based algorithm over
   sBLACs/scalar ops (Cl1ck-style synthesis, algorithm database, variants).
2. **Stage 2** -- rewrite rules R0/R1, statement normalization and tiling
   into nu-BLAC-style vector code, producing C-IR.
3. **Stage 3** -- code-level optimizations (unrolling, scalar replacement,
   the load/store analysis, DCE) and autotuning over algorithmic and
   code-generation variants using the machine model as the timing oracle.

The result bundles the chosen C-IR kernel, the emitted single-source C code,
the performance estimate, and enough metadata to reproduce the choice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..backend.c_unparser import unparse_function
from ..cir.nodes import Function
from ..cir.interpreter import Interpreter
from ..cir.passes import PassOptions, PassReport, run_pipeline
from ..cl1ck.database import AlgorithmDatabase
from ..errors import AutotuningError
from ..ir.program import Program
from ..lgen.compiler import lower_program_with_stats
from ..lgen.lowering import LoweringOptions
from ..lgen.tiling import CodegenVariant, candidate_variants
from ..machine.microarch import MicroArchitecture, default_machine
from ..machine.roofline import PerformanceEstimate, analyze_function
from .options import Options
from .rewrite import RewriteReport, apply_rewrite_rules
from .stage1 import (Stage1Result, enumerate_variant_choices, find_hlac_sites,
                     synthesize_basic_program)


@dataclass
class Candidate:
    """One fully generated implementation considered by the autotuner."""

    label: str
    stage1: Stage1Result
    codegen: CodegenVariant
    function: Function
    estimate: PerformanceEstimate
    pass_report: PassReport
    rewrite_report: RewriteReport

    @property
    def cycles(self) -> float:
        return self.estimate.cycles


@dataclass
class GenerationResult:
    """The pure, picklable output of one SLinGen run.

    This is the artifact the kernel service stores and serves: everything a
    client needs to *use* the generated kernel (C-IR function, emitted C,
    performance estimate, provenance) with no back-reference to the request
    ``Program`` object, so results round-trip through pickle and across
    worker processes.
    """

    program_name: str
    function: Function
    c_code: str
    performance: PerformanceEstimate
    options: Options
    variant_label: str
    candidates: List[Dict[str, object]] = field(default_factory=list)
    database_stats: Dict[str, int] = field(default_factory=dict)
    basic_program: Optional[Program] = None
    pass_report: Optional[PassReport] = None
    rewrite_report: Optional[RewriteReport] = None

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the generated kernel on numpy inputs (via the C-IR
        interpreter)."""
        return Interpreter(self.function).run(inputs)

    def compile_and_run(self, inputs: Dict[str, np.ndarray],
                        cache_key: Optional[str] = None
                        ) -> Dict[str, np.ndarray]:
        """Compile the emitted C with the system compiler and execute it.

        ``cache_key`` (the service's content hash) enables shared-object
        reuse across calls via the backend object cache.
        """
        from ..backend.compile import compile_kernel
        kernel = compile_kernel(self.c_code, self.function,
                                cache_key=cache_key)
        return kernel.run(inputs)

    @property
    def flops_per_cycle(self) -> float:
        return self.performance.flops_per_cycle

    def summary(self) -> Dict[str, object]:
        return {
            "program": self.program_name,
            "variant": self.variant_label,
            "cycles": self.performance.cycles,
            "flops_per_cycle": self.performance.flops_per_cycle,
            "bottleneck": self.performance.bottleneck,
            "statements": self.function.statement_count(),
            "candidates_evaluated": len(self.candidates),
        }


@dataclass
class GeneratedCode:
    """The output of one SLinGen run (bound to the request ``Program``)."""

    program: Program
    basic_program: Program
    function: Function
    c_code: str
    performance: PerformanceEstimate
    options: Options
    variant_label: str
    candidates: List[Dict[str, object]] = field(default_factory=list)
    pass_report: Optional[PassReport] = None
    rewrite_report: Optional[RewriteReport] = None
    database_stats: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_result(cls, program: Program,
                    result: GenerationResult) -> "GeneratedCode":
        """Re-bind a (possibly cached) pure result to its request program."""
        return cls(
            program=program,
            basic_program=result.basic_program,
            function=result.function,
            c_code=result.c_code,
            performance=result.performance,
            options=result.options,
            variant_label=result.variant_label,
            candidates=result.candidates,
            pass_report=result.pass_report,
            rewrite_report=result.rewrite_report,
            database_stats=result.database_stats)

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the generated kernel on numpy inputs (via the C-IR
        interpreter)."""
        return Interpreter(self.function).run(inputs)

    def compile_and_run(self, inputs: Dict[str, np.ndarray]
                        ) -> Dict[str, np.ndarray]:
        """Compile the emitted C with the system compiler and execute it."""
        from ..backend.compile import compile_kernel
        kernel = compile_kernel(self.c_code, self.function)
        return kernel.run(inputs)

    @property
    def flops_per_cycle(self) -> float:
        return self.performance.flops_per_cycle

    def summary(self) -> Dict[str, object]:
        return {
            "program": self.program.name,
            "variant": self.variant_label,
            "cycles": self.performance.cycles,
            "flops_per_cycle": self.performance.flops_per_cycle,
            "bottleneck": self.performance.bottleneck,
            "statements": self.function.statement_count(),
            "candidates_evaluated": len(self.candidates),
        }


class SLinGen:
    """Program generator for small-scale linear algebra applications."""

    def __init__(self, options: Optional[Options] = None,
                 machine: Optional[MicroArchitecture] = None,
                 store: Optional[object] = None):
        """``store`` (a :class:`repro.service.store.KernelStore`) makes the
        generator consult and populate the persistent kernel cache on every
        ``generate``/``generate_result`` call."""
        self.options = options or Options()
        self.machine = machine or default_machine()
        self.store = store

    # -- public API -------------------------------------------------------------

    def generate(self, program: Program,
                 nominal_flops: Optional[float] = None) -> GeneratedCode:
        """Generate optimized code for an LA program."""
        result = self.generate_result(program, nominal_flops=nominal_flops)
        return GeneratedCode.from_result(program, result)

    def generate_result(self, program: Program,
                        nominal_flops: Optional[float] = None
                        ) -> GenerationResult:
        """Generate code for an LA program, returning the pure
        :class:`GenerationResult` (no reference back to ``program``).

        This is the path the kernel service calls: the result pickles
        cleanly, so it can cross process boundaries and live in the
        persistent store.  When the generator was constructed with a
        ``store``, the store is consulted first and populated on a miss.
        """
        program.validate()
        self.options.validate()

        key: Optional[str] = None
        if self.store is not None:
            from ..service.keys import cache_key
            key = cache_key(program, self.options, self.machine,
                            nominal_flops=nominal_flops)
            cached = self.store.get(key)
            if cached is not None:
                return cached

        result = self._generate_uncached(program, nominal_flops)
        if self.store is not None and key is not None:
            self.store.put(key, result)
        return result

    def _generate_uncached(self, program: Program,
                           nominal_flops: Optional[float]) -> GenerationResult:
        options = self.options
        database = AlgorithmDatabase()
        block_size = options.effective_block_size

        sites = find_hlac_sites(program, block_size)

        if options.autotune:
            stage1_choices = enumerate_variant_choices(
                sites, max_candidates=max(1, options.max_variants))
            codegen_variants = candidate_variants(
                vectorize=options.vectorize)[:max(1, options.max_variants)]
        else:
            stage1_choices = [{}]
            codegen_variants = [CodegenVariant(
                vector_width=options.effective_vector_width,
                unroll_trip_count=options.unroll_trip_count,
                unroll_body_limit=options.unroll_body_limit,
                use_shuffle_transpose=options.use_shuffle_transpose,
                load_store_analysis=options.load_store_analysis)]

        candidates: List[Candidate] = []

        # Phase 1: explore algorithmic (Stage-1) variants with the default
        # code-generation settings.
        default_codegen = codegen_variants[0]
        for choice in stage1_choices:
            candidates.append(self._build_candidate(
                program, choice, default_codegen, database, block_size,
                nominal_flops))
        best = min(candidates, key=lambda c: c.cycles)

        # Phase 2: explore code-generation variants for the best algorithm.
        for codegen in codegen_variants[1:]:
            if len(candidates) >= options.max_variants:
                break
            candidates.append(self._build_candidate(
                program, best.stage1.variant_choices, codegen, database,
                block_size, nominal_flops))
        best = min(candidates, key=lambda c: c.cycles)

        if not candidates:
            raise AutotuningError("no candidate implementation was generated")

        c_code = unparse_function(best.function)
        return GenerationResult(
            program_name=program.name,
            basic_program=best.stage1.program,
            function=best.function,
            c_code=c_code,
            performance=best.estimate,
            options=options,
            variant_label=best.label,
            candidates=[{
                "label": c.label,
                "cycles": c.cycles,
                "flops_per_cycle": c.estimate.flops_per_cycle,
                "bottleneck": c.estimate.bottleneck,
            } for c in candidates],
            database_stats=database.stats(),
            pass_report=best.pass_report,
            rewrite_report=best.rewrite_report,
        )

    # -- internals ----------------------------------------------------------------

    def _build_candidate(self, program: Program, variant_choices: Dict[int, str],
                         codegen: CodegenVariant, database: AlgorithmDatabase,
                         block_size: int,
                         nominal_flops: Optional[float]) -> Candidate:
        options = self.options

        stage1 = synthesize_basic_program(
            program, block_size, variant_choices, database,
            label=f"v{len(variant_choices)}")

        rewrite_report = RewriteReport()
        if options.rewrite_rules:
            rewrite_report = apply_rewrite_rules(stage1.program)

        lowering = LoweringOptions(
            vector_width=codegen.vector_width,
            use_shuffle_transpose=codegen.use_shuffle_transpose)
        function, _ = lower_program_with_stats(
            stage1.program, lowering,
            function_name=options.function_name or f"{program.name}_kernel",
            annotate=options.annotate_code)

        pass_options = PassOptions(
            unroll=options.unroll,
            max_unroll_trip_count=codegen.unroll_trip_count,
            max_unroll_body=codegen.unroll_body_limit,
            scalar_replacement=options.scalar_replacement,
            load_store_analysis=(options.load_store_analysis
                                 and codegen.load_store_analysis),
            dead_code_elimination=True,
            algebraic_simplification=True)
        pass_report = run_pipeline(function, pass_options)

        estimate = analyze_function(function, machine=self.machine,
                                    nominal_flops=nominal_flops)
        label = f"{stage1.label}|{codegen.label}"
        return Candidate(label=label, stage1=stage1, codegen=codegen,
                         function=function, estimate=estimate,
                         pass_report=pass_report,
                         rewrite_report=rewrite_report)


def generate(program: Program, options: Optional[Options] = None,
             nominal_flops: Optional[float] = None) -> GeneratedCode:
    """Convenience wrapper: ``SLinGen(options).generate(program)``."""
    return SLinGen(options).generate(program, nominal_flops=nominal_flops)
