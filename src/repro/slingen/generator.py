"""The SLinGen program generator (paper Sec. 3, Fig. 6).

``SLinGen.generate(program)`` runs the full pipeline:

1. **Stage 1** -- every HLAC is expanded into a loop-based algorithm over
   sBLACs/scalar ops (Cl1ck-style synthesis, algorithm database, variants).
2. **Stage 2** -- rewrite rules R0/R1, statement normalization and tiling
   into nu-BLAC-style vector code, producing C-IR.
3. **Stage 3** -- code-level optimizations (unrolling, scalar replacement,
   the load/store analysis, DCE) and autotuning over algorithmic and
   code-generation variants.

Variant selection is delegated to a pluggable search strategy
(:mod:`repro.tuning.strategies`) scoring candidates with a measurement
backend (:mod:`repro.tuning.measure`).  The default -- no strategy or
measurer given -- is the paper's model-driven two-phase search with the
roofline estimate as the timing oracle, byte-compatible with the historic
hard-coded loop; passing e.g. ``strategy="hill-climb"`` and an empirical
measurer turns the same pipeline into a measurement-driven autotuner.

The result bundles the chosen C-IR kernel, the emitted single-source C code,
the performance estimate, and enough metadata to reproduce the choice.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, replace as dataclasses_replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend.c_unparser import unparse_function
from ..cir.nodes import Function
from ..cir.interpreter import Interpreter
from ..cir.passes import PassOptions, PassReport
from ..errors import AutotuningError
from ..ir.program import Program
from ..lgen.tiling import (CodegenVariant, candidate_variants,
                           dedupe_resolved)
from ..machine.microarch import MicroArchitecture, default_machine
from ..machine.roofline import PerformanceEstimate, analyze_function
from ..pipeline import phases as pipeline_phases
from ..pipeline.cache import PhaseCache, PhaseTimings, shared_phase_cache
from .options import Options
from .rewrite import RewriteReport
from .stage1 import (Stage1Result, enumerate_variant_choices,
                     find_hlac_sites)


@dataclass
class Candidate:
    """One fully generated implementation considered by the autotuner."""

    label: str
    stage1: Stage1Result
    codegen: CodegenVariant
    function: Function
    estimate: PerformanceEstimate
    pass_report: PassReport
    rewrite_report: RewriteReport
    #: Key of the Stage-1 artifact this candidate was derived from, and
    #: that artifact's algorithm-database stats (for result metadata).
    stage1_cache_key: str = ""
    database_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.estimate.cycles


@dataclass
class GenerationResult:
    """The pure, picklable output of one SLinGen run.

    This is the artifact the kernel service stores and serves: everything a
    client needs to *use* the generated kernel (C-IR function, emitted C,
    performance estimate, provenance) with no back-reference to the request
    ``Program`` object, so results round-trip through pickle and across
    worker processes.
    """

    program_name: str
    function: Function
    c_code: str
    performance: PerformanceEstimate
    options: Options
    variant_label: str
    candidates: List[Dict[str, object]] = field(default_factory=list)
    database_stats: Dict[str, int] = field(default_factory=dict)
    basic_program: Optional[Program] = None
    pass_report: Optional[PassReport] = None
    rewrite_report: Optional[RewriteReport] = None
    #: Per-phase wall-clock/hit accounting of the generation run that
    #: produced this result (``None`` on results recalled from a store:
    #: a store hit did no phase work, and stored results stay a pure
    #: function of their key).
    phase_stats: Optional[Dict[str, Dict[str, float]]] = None

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the generated kernel on numpy inputs (via the C-IR
        interpreter)."""
        return Interpreter(self.function).run(inputs)

    def compile_and_run(self, inputs: Dict[str, np.ndarray],
                        cache_key: Optional[str] = None
                        ) -> Dict[str, np.ndarray]:
        """Compile the emitted C with the system compiler and execute it.

        ``cache_key`` (the service's content hash) enables shared-object
        reuse across calls via the backend object cache.
        """
        from ..backend.compile import compile_kernel
        kernel = compile_kernel(self.c_code, self.function,
                                cache_key=cache_key)
        return kernel.run(inputs)

    def run_numpy(self, inputs: Dict[str, np.ndarray],
                  cache_key: Optional[str] = None) -> Dict[str, np.ndarray]:
        """Execute the generated kernel via its NumPy translation -- real
        (fast) execution with no C compiler required."""
        return self.kernel("numpy", cache_key=cache_key).run(inputs)

    def kernel(self, backend: str = "auto",
               cache_key: Optional[str] = None):
        """An executable kernel on the chosen backend.

        ``backend`` is ``"compiled"``, ``"numpy"``, ``"interpreter"``, or
        ``"auto"`` (compiled when a C compiler is available, NumPy
        otherwise); the returned object has the shared
        ``run(inputs)``/``time(inputs, ...)`` contract.  ``cache_key``
        (the service's content hash) enables content-addressed reuse of
        the compiled artifact.
        """
        from ..backend import make_executor
        return make_executor(self.function, backend=backend,
                             c_code=self.c_code, cache_key=cache_key)

    @property
    def flops_per_cycle(self) -> float:
        return self.performance.flops_per_cycle

    def summary(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "program": self.program_name,
            "variant": self.variant_label,
            "cycles": self.performance.cycles,
            "flops_per_cycle": self.performance.flops_per_cycle,
            "bottleneck": self.performance.bottleneck,
            "statements": self.function.statement_count(),
            "candidates_evaluated": len(self.candidates),
        }
        if self.phase_stats is not None:
            doc["phases"] = self.phase_stats
        return doc


@dataclass
class GeneratedCode:
    """The output of one SLinGen run (bound to the request ``Program``)."""

    program: Program
    basic_program: Program
    function: Function
    c_code: str
    performance: PerformanceEstimate
    options: Options
    variant_label: str
    candidates: List[Dict[str, object]] = field(default_factory=list)
    pass_report: Optional[PassReport] = None
    rewrite_report: Optional[RewriteReport] = None
    database_stats: Dict[str, int] = field(default_factory=dict)
    phase_stats: Optional[Dict[str, Dict[str, float]]] = None

    @classmethod
    def from_result(cls, program: Program,
                    result: GenerationResult) -> "GeneratedCode":
        """Re-bind a (possibly cached) pure result to its request program."""
        return cls(
            program=program,
            basic_program=result.basic_program,
            function=result.function,
            c_code=result.c_code,
            performance=result.performance,
            options=result.options,
            variant_label=result.variant_label,
            candidates=result.candidates,
            pass_report=result.pass_report,
            rewrite_report=result.rewrite_report,
            database_stats=result.database_stats,
            phase_stats=result.phase_stats)

    def run(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Execute the generated kernel on numpy inputs (via the C-IR
        interpreter)."""
        return Interpreter(self.function).run(inputs)

    def compile_and_run(self, inputs: Dict[str, np.ndarray]
                        ) -> Dict[str, np.ndarray]:
        """Compile the emitted C with the system compiler and execute it."""
        from ..backend.compile import compile_kernel
        kernel = compile_kernel(self.c_code, self.function)
        return kernel.run(inputs)

    def run_numpy(self, inputs: Dict[str, np.ndarray]
                  ) -> Dict[str, np.ndarray]:
        """Execute the generated kernel via its NumPy translation."""
        return self.kernel("numpy").run(inputs)

    def kernel(self, backend: str = "auto"):
        """An executable kernel on the chosen backend (see
        :meth:`GenerationResult.kernel`)."""
        from ..backend import make_executor
        return make_executor(self.function, backend=backend,
                             c_code=self.c_code)

    @property
    def flops_per_cycle(self) -> float:
        return self.performance.flops_per_cycle

    def summary(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "program": self.program.name,
            "variant": self.variant_label,
            "cycles": self.performance.cycles,
            "flops_per_cycle": self.performance.flops_per_cycle,
            "bottleneck": self.performance.bottleneck,
            "statements": self.function.statement_count(),
            "candidates_evaluated": len(self.candidates),
        }
        if self.phase_stats is not None:
            doc["phases"] = self.phase_stats
        return doc


def build_candidate(program: Program, options: Options,
                    machine: MicroArchitecture,
                    variant_choices: Dict[int, str],
                    codegen: CodegenVariant,
                    block_size: int,
                    nominal_flops: Optional[float],
                    cache: Optional[PhaseCache] = None,
                    timings: Optional[PhaseTimings] = None) -> Candidate:
    """Run Stages 1-3 for one (algorithmic, code-generation) variant pair.

    This is the single place a candidate implementation is built; the
    generator's search strategies and the standalone empirical tuner both
    call it.  ``block_size`` is the options default; a ``codegen`` with an
    explicit ``block_size`` overrides it for Stage-1 synthesis.

    The stages run as the four memoized drivers of
    :mod:`repro.pipeline.phases`, each keyed by exactly the option axes
    it consumes (:data:`repro.pipeline.keys.PHASE_AXES`): with a
    ``cache``, codegen-only sweeps reuse one Stage-1 build and repeated
    generations of the same program reuse lowering.  Only the roofline
    estimate -- a cheap static analysis parameterized by the machine
    model -- is recomputed every call.
    """
    analysis = options.analysis
    stage1_art = pipeline_phases.stage1(
        program, codegen.block_size or block_size, variant_choices,
        cache=cache, timings=timings, analysis=analysis)
    rewritten = pipeline_phases.rewrite(
        stage1_art, options.rewrite_rules, options.verified_rewrites,
        cache=cache, timings=timings, analysis=analysis)
    lowered = pipeline_phases.lower(
        rewritten, codegen.vector_width, codegen.use_shuffle_transpose,
        function_name=options.function_name or f"{program.name}_kernel",
        annotate=options.annotate_code, cache=cache, timings=timings,
        analysis=analysis)
    pass_options = PassOptions(
        unroll=options.unroll,
        max_unroll_trip_count=codegen.unroll_trip_count,
        max_unroll_body=codegen.unroll_body_limit,
        scalar_replacement=(options.scalar_replacement
                            and codegen.scalar_replacement),
        load_store_analysis=(options.load_store_analysis
                             and codegen.load_store_analysis),
        dead_code_elimination=True,
        algebraic_simplification=True)
    optimized = pipeline_phases.optimize(lowered, pass_options,
                                         cache=cache, timings=timings,
                                         analysis=analysis)

    estimate = analyze_function(optimized.function, machine=machine,
                                nominal_flops=nominal_flops)
    # The candidate's Stage-1 view carries the *rewritten* program (the
    # basic program every later stage consumed), as it always has.
    stage1 = dataclasses_replace(stage1_art.result,
                                 program=rewritten.program)
    label = f"{stage1.label}|{codegen.label}"
    return Candidate(label=label, stage1=stage1, codegen=codegen,
                     function=optimized.function, estimate=estimate,
                     pass_report=optimized.pass_report,
                     rewrite_report=rewritten.report,
                     stage1_cache_key=stage1_art.key,
                     database_stats=stage1_art.database_stats)


class CandidateBuilder:
    """Memoized candidate construction over a variant search space.

    Maps :class:`~repro.tuning.strategies.TuningPoint` coordinates --
    (Stage-1 choice index, codegen variant index) -- to fully built
    :class:`Candidate` implementations, building each point at most once
    and recording build order for the result metadata.

    The builder is thread-safe: the memo, build list, and timing
    accumulator are guarded by one lock, so the threaded service's
    coalesced-miss path (or any caller scoring points from several
    threads) still builds each point exactly once.  Shared Stage-1 work
    lives in the (itself thread-safe) ``phase_cache``; each phase builds
    with private state, so there is no cross-candidate mutable
    algorithm database left to race on.
    """

    def __init__(self, program: Program, options: Options,
                 machine: MicroArchitecture,
                 stage1_choices: List[Dict[int, str]],
                 codegen_variants: List[CodegenVariant],
                 nominal_flops: Optional[float] = None,
                 phase_cache: Optional[PhaseCache] = None,
                 timings: Optional[PhaseTimings] = None):
        if not stage1_choices or not codegen_variants:
            raise AutotuningError("empty variant space")
        self.program = program
        self.options = options
        self.machine = machine
        self.stage1_choices = stage1_choices
        self.codegen_variants = codegen_variants
        self.nominal_flops = nominal_flops
        self.phase_cache = (phase_cache if phase_cache is not None
                            else shared_phase_cache())
        self.timings = timings if timings is not None else PhaseTimings()
        self.block_size = options.effective_block_size
        self.built: List[Candidate] = []
        self._memo: Dict[Tuple[int, int], Candidate] = {}
        self._lock = threading.Lock()

    def space(self):
        """The joint search space strategies walk."""
        from ..tuning.strategies import SearchSpace
        return SearchSpace(len(self.stage1_choices), self.codegen_variants)

    def candidate(self, point) -> Candidate:
        """The candidate at ``point`` (built on first request)."""
        key = (point.stage1, point.codegen)
        # The lock is held across the build: concurrent requests for the
        # same point coalesce into one build, and `built` keeps exact
        # build order.  Builds are pure CPU work with no reentry into
        # the builder, so holding the lock cannot deadlock.
        with self._lock:
            found = self._memo.get(key)
            if found is None:
                found = build_candidate(
                    self.program, self.options, self.machine,
                    self.stage1_choices[point.stage1],
                    self.codegen_variants[point.codegen],
                    self.block_size, self.nominal_flops,
                    cache=self.phase_cache, timings=self.timings)
                self._memo[key] = found
                self.built.append(found)
        return found

    def database_stats(self) -> Dict[str, int]:
        """Algorithm-database stats rolled up over the distinct Stage-1
        artifacts the built candidates consumed (identical whether the
        artifacts were freshly synthesized or phase-cache hits)."""
        with self._lock:
            per_stage1 = {c.stage1_cache_key: c.database_stats
                          for c in self.built}
        return pipeline_phases.aggregate_database_stats(per_stage1)


class SLinGen:
    """Program generator for small-scale linear algebra applications."""

    def __init__(self, options: Optional[Options] = None,
                 machine: Optional[MicroArchitecture] = None,
                 store: Optional[object] = None,
                 strategy: Optional[object] = None,
                 measurer: Optional[object] = None,
                 phase_cache: Optional[PhaseCache] = None):
        """``store`` (a :class:`repro.service.store.KernelStore`) makes the
        generator consult and populate the persistent kernel cache on every
        ``generate``/``generate_result`` call.

        ``strategy`` (a :class:`~repro.tuning.strategies.SearchStrategy` or
        its name) and ``measurer`` (a :class:`~repro.tuning.measure.Measurer`
        or backend name) customize how ``autotune=True`` explores the
        variant space.  Both default to the paper's model-driven two-phase
        search -- keys and results for unchanged requests stay stable.

        ``phase_cache`` (a :class:`~repro.pipeline.cache.PhaseCache`)
        memoizes Stage-1/rewrite/lowering/pass artifacts across variants
        and across calls; ``None`` uses the shared process-wide cache
        (:func:`~repro.pipeline.cache.shared_phase_cache`).  Phase
        artifacts are pure functions of their keys, so the cache changes
        generation cost, never generated code."""
        self.options = options or Options()
        self.machine = machine or default_machine()
        self.store = store
        self.strategy = strategy
        self.measurer = measurer
        self.phase_cache = phase_cache

    # -- public API -------------------------------------------------------------

    def generate(self, program: Program,
                 nominal_flops: Optional[float] = None) -> GeneratedCode:
        """Generate optimized code for an LA program.

        Thin wrapper over the canonical :meth:`generate_result` path: it
        runs exactly that and re-binds the pure result to ``program``
        as a :class:`GeneratedCode`.
        """
        result = self.generate_result(program, nominal_flops=nominal_flops)
        return GeneratedCode.from_result(program, result)

    def generate_result(self, program: Program,
                        nominal_flops: Optional[float] = None
                        ) -> GenerationResult:
        """Generate code for an LA program, returning the pure
        :class:`GenerationResult` (no reference back to ``program``).

        This is **the** canonical generation path: :meth:`generate` and
        the module-level :func:`generate` are thin wrappers over it, and
        it is the path the kernel service calls.  The result pickles
        cleanly, so it can cross process boundaries and live in the
        persistent store.  When the generator was constructed with a
        ``store``, the store is consulted first and populated on a miss.
        """
        program.validate()
        self.options.validate()

        key: Optional[str] = None
        # The cache key covers (program, options, machine) only: a custom
        # strategy or measurer changes which kernel wins without changing
        # the key, so such generators bypass the store entirely -- a stored
        # result must stay a pure function of its key.  (The empirical
        # tuner persists its winners through the TuningDB as pinned
        # *options*, which do participate in the key.)
        if self.store is not None and self.strategy is None \
                and self.measurer is None:
            from ..service.keys import cache_key
            key = cache_key(program, self.options, self.machine,
                            nominal_flops=nominal_flops)
            cached = self.store.get(key)
            if cached is not None:
                return cached

        result = self._generate_uncached(program, nominal_flops)
        if self.store is not None and key is not None:
            # Stored results are a pure function of their key; the phase
            # timings are wall-clock measurements of *this* run, so they
            # stay out of the persisted artifact.
            self.store.put(key, dataclasses_replace(result,
                                                    phase_stats=None))
        return result

    def _generate_uncached(self, program: Program,
                           nominal_flops: Optional[float]) -> GenerationResult:
        from ..tuning.strategies import make_strategy

        options = self.options
        block_size = options.effective_block_size
        sites = find_hlac_sites(program, block_size)

        if options.stage1_variants is not None:
            stage1_choices = [dict(options.stage1_variants)]
        elif options.autotune:
            stage1_choices = enumerate_variant_choices(
                sites, max_candidates=max(1, options.max_variants))
        else:
            stage1_choices = [{}]

        if options.autotune:
            codegen_variants = dedupe_resolved(
                candidate_variants(vectorize=options.vectorize),
                block_size)[:max(1, options.max_variants)]
        else:
            codegen_variants = [CodegenVariant(
                vector_width=options.effective_vector_width,
                unroll_trip_count=options.unroll_trip_count,
                unroll_body_limit=options.unroll_body_limit,
                use_shuffle_transpose=options.use_shuffle_transpose,
                load_store_analysis=options.load_store_analysis,
                block_size=options.block_size,
                scalar_replacement=options.scalar_replacement)]

        builder = CandidateBuilder(
            program, options, self.machine, stage1_choices, codegen_variants,
            nominal_flops=nominal_flops, phase_cache=self.phase_cache)
        strategy = make_strategy(self.strategy or "two-phase")
        scores: Dict[str, float] = {}

        measurer = None
        measure_inputs: Dict[str, object] = {}
        if self.measurer is not None:
            from ..tuning.measure import resolve_measurer
            measurer = resolve_measurer(self.measurer, machine=self.machine)

        def evaluate(point) -> float:
            candidate = builder.candidate(point)
            if measurer is None:
                score = candidate.cycles
            else:
                from ..tuning.measure import score_function
                score, _, _ = score_function(measurer, candidate.function,
                                             candidate.estimate,
                                             measure_inputs)
            scores[candidate.label] = score
            return score

        outcome = strategy.search(builder.space(), evaluate,
                                  budget=max(1, options.max_variants))
        if measurer is not None and not math.isfinite(outcome.best_score):
            raise AutotuningError(
                f"every candidate of {program.name!r} failed to measure "
                f"on the {measurer.name!r} backend")
        best = builder.candidate(outcome.best)

        c_code = unparse_function(best.function)
        return GenerationResult(
            program_name=program.name,
            basic_program=best.stage1.program,
            function=best.function,
            c_code=c_code,
            performance=best.estimate,
            options=options,
            variant_label=best.label,
            candidates=[{
                "label": c.label,
                "cycles": c.cycles,
                "flops_per_cycle": c.estimate.flops_per_cycle,
                "bottleneck": c.estimate.bottleneck,
                "score": scores.get(c.label),
            } for c in builder.built],
            database_stats=builder.database_stats(),
            pass_report=best.pass_report,
            rewrite_report=best.rewrite_report,
            phase_stats=builder.timings.as_dict(),
        )



def generate(program: Program, options: Optional[Options] = None,
             nominal_flops: Optional[float] = None) -> GeneratedCode:
    """Module-level convenience wrapper over the one canonical generation
    path, ``SLinGen.generate_result``: equivalent to
    ``SLinGen(options).generate(program)``."""
    return SLinGen(options).generate(program, nominal_flops=nominal_flops)
