"""User-facing configuration of the SLinGen generator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class Options:
    """Configuration of a :class:`~repro.slingen.generator.SLinGen` run.

    Parameters
    ----------
    vectorize:
        Emit AVX-style vector code (nu = ``vector_width``); when false the
        generated C is scalar.
    vector_width:
        Number of doubles per vector register (4 for AVX double precision,
        2 for SSE2).
    block_size:
        Blocking factor used by Stage 1 when expanding HLACs.  ``None``
        defaults to the vector width, as in the paper.
    autotune:
        Explore algorithmic variants (Stage 1) and code-generation variants
        (Stage 2/3) and keep the fastest according to the machine model.
    load_store_analysis / scalar_replacement / unroll:
        Individual Stage-3 optimizations (exposed for the ablation study).
    rewrite_rules:
        Apply the R0/R1 scalar-packing rules of Table 2 during Stage 2.
    max_variants:
        Upper bound on the number of candidate implementations evaluated by
        the autotuner.
    stage1_variants:
        Pin the Stage-1 algorithmic choices: maps HLAC statement indices
        (in the unrolled input program) to Cl1ck variant names, exactly the
        ``variant_choices`` of a :class:`~repro.slingen.stage1.Stage1Result`.
        ``None`` (the default) lets the autotuner choose; the empirical
        tuner uses this to replay a tuned algorithm deterministically.
    verified_rewrites:
        Ids of CEGIS-verified rewrites (:mod:`repro.cegis.rewrites`) to
        apply to the basic program after the sound R0/R1 rules, in
        catalog order.  These transformations are *unsound in general*;
        callers must only enable ids a verification run accepted for
        this concrete program (normally via a
        :class:`~repro.cegis.fixbank.FixRecord`).
    analysis:
        Static-verification gate mode (:mod:`repro.analysis`): ``"off"``
        skips verification, ``"warn"`` verifies every freshly built
        phase artifact and records diagnostics in the analysis stats,
        ``"strict"`` additionally raises
        :class:`~repro.errors.AnalysisError` on any error diagnostic
        *before* the artifact is cached.  A gate axis: it never changes
        what any phase computes, so it feeds no cache key.
    """

    vectorize: bool = True
    vector_width: int = 4
    block_size: Optional[int] = None
    autotune: bool = True
    load_store_analysis: bool = True
    scalar_replacement: bool = True
    unroll: bool = True
    unroll_trip_count: int = 8
    unroll_body_limit: int = 64
    rewrite_rules: bool = True
    use_shuffle_transpose: bool = True
    max_variants: int = 12
    stage1_variants: Optional[Dict[int, str]] = None
    annotate_code: bool = True
    function_name: Optional[str] = None
    verified_rewrites: Tuple[str, ...] = ()
    analysis: str = "off"

    def validate(self) -> "Options":
        """Check option consistency; raises
        :class:`~repro.errors.ConfigurationError` on invalid settings.

        Called at the top of :meth:`SLinGen.generate`, and by the kernel
        service before a request is hashed into a cache key (an invalid
        configuration must never be cached).  Returns ``self`` for chaining.
        """
        from ..errors import ConfigurationError

        if self.vector_width not in (1, 2, 4):
            # the C backend maps width 2 to 128-bit SSE2/AVX and width 4
            # to 256-bit AVX; other widths have no intrinsic type and
            # must be refused before any code is generated (and cached)
            raise ConfigurationError(
                f"vector_width must be 1 (scalar), 2 (SSE2) or 4 (AVX), "
                f"got {self.vector_width}")
        if self.block_size is not None and self.block_size < 1:
            raise ConfigurationError(
                f"block_size must be positive when set, got {self.block_size}")
        if self.max_variants < 1:
            raise ConfigurationError(
                f"max_variants must be >= 1, got {self.max_variants}")
        if self.unroll_trip_count < 1:
            raise ConfigurationError(
                f"unroll_trip_count must be >= 1, got {self.unroll_trip_count}")
        if self.unroll_body_limit < 1:
            raise ConfigurationError(
                f"unroll_body_limit must be >= 1, got {self.unroll_body_limit}")
        if self.stage1_variants is not None:
            for index, variant in self.stage1_variants.items():
                if not isinstance(index, int) or index < 0 \
                        or not isinstance(variant, str) or not variant:
                    raise ConfigurationError(
                        f"stage1_variants must map HLAC indices (int >= 0) "
                        f"to variant names, got {index!r}: {variant!r}")
        if self.function_name is not None \
                and not self.function_name.isidentifier():
            raise ConfigurationError(
                f"function_name must be a valid C identifier, "
                f"got {self.function_name!r}")
        if self.analysis not in ("off", "warn", "strict"):
            raise ConfigurationError(
                f"analysis must be 'off', 'warn' or 'strict', "
                f"got {self.analysis!r}")
        if self.verified_rewrites:
            # normalize to a tuple so JSON round-trips (which produce
            # lists) hash identically in the service cache keys
            self.verified_rewrites = tuple(self.verified_rewrites)
            from ..cegis.rewrites import known_ids
            known = set(known_ids())
            for rewrite_id in self.verified_rewrites:
                if rewrite_id not in known:
                    raise ConfigurationError(
                        f"unknown verified rewrite {rewrite_id!r}; "
                        f"known: {', '.join(sorted(known))}")
        return self

    @property
    def effective_vector_width(self) -> int:
        return self.vector_width if self.vectorize else 1

    @property
    def effective_block_size(self) -> int:
        if self.block_size is not None:
            return self.block_size
        return max(self.effective_vector_width, 2)

    def scalar_copy(self) -> "Options":
        """A copy of these options with vectorization disabled."""
        from dataclasses import replace
        return replace(self, vectorize=False)
