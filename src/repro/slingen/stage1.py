"""Stage 1: synthesis of basic linear algebra programs (paper Sec. 3.1).

The input LA program is transformed into one or more *basic* programs whose
statements are only sBLACs and auxiliary scalar computations.  For every
HLAC statement, a loop-based algorithm is synthesized (via the Cl1ck-style
:class:`~repro.cl1ck.algorithms.Synthesizer`) and spliced in place of the
statement.  Synthesized algorithms are cached in the algorithm database
(Stage 1a) and reused when the same functionality/sizes reappear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cl1ck.algorithms import Synthesizer
from ..cl1ck.database import AlgorithmDatabase
from ..cl1ck.operations import OperationInstance, recognize
from ..ir.program import Program, Statement


@dataclass
class HlacSite:
    """One HLAC occurrence in the input program."""

    index: int                      # statement index in the unrolled program
    operation: OperationInstance
    variants: List[str]

    @property
    def kind(self) -> str:
        return self.operation.kind


@dataclass
class Stage1Result:
    """A basic program together with the choices that produced it."""

    program: Program
    variant_choices: Dict[int, str] = field(default_factory=dict)
    sites: List[HlacSite] = field(default_factory=list)

    @property
    def label(self) -> str:
        if not self.variant_choices:
            return "no-hlacs"
        return ",".join(f"{index}:{variant}"
                        for index, variant in sorted(self.variant_choices.items()))


def find_hlac_sites(program: Program, block_size: int) -> List[HlacSite]:
    """Recognize every HLAC in the (unrolled) input program."""
    scratch = Program(program.name + "_scratch")
    for operand in program.operands.values():
        scratch.operands[operand.name] = operand
    synthesizer = Synthesizer(scratch, block_size)
    sites: List[HlacSite] = []
    for index, statement in enumerate(program.unrolled_statements()):
        if statement.is_hlac():
            operation = recognize(statement)
            sites.append(HlacSite(index, operation,
                                  synthesizer.variants_for(operation)))
    return sites


def synthesize_basic_program(program: Program, block_size: int,
                             variant_choices: Optional[Dict[int, str]] = None,
                             database: Optional[AlgorithmDatabase] = None,
                             label: str = "basic") -> Stage1Result:
    """Expand every HLAC of ``program`` and return the basic program.

    ``variant_choices`` maps HLAC statement indices (in the unrolled input)
    to variant names; unspecified sites use the default (first) variant.
    """
    variant_choices = dict(variant_choices or {})
    database = database or AlgorithmDatabase()

    basic = Program(f"{program.name}_{label}", constants=dict(program.constants))
    for operand in program.operands.values():
        basic.operands[operand.name] = operand

    synthesizer = Synthesizer(basic, block_size,
                              counter=database.temp_counter)
    chosen: Dict[int, str] = {}
    sites: List[HlacSite] = []

    for index, statement in enumerate(program.unrolled_statements()):
        if not statement.is_hlac():
            basic.statements.append(statement)
            continue
        operation = recognize(statement)
        variants = synthesizer.variants_for(operation)
        database.entry_for(operation, variants)
        variant = variant_choices.get(index, variants[0])
        if variant not in variants:
            variant = variants[0]
        chosen[index] = variant
        sites.append(HlacSite(index, operation, variants))

        cached = database.lookup(operation, variant, block_size)
        if cached is not None:
            expansion = cached
        else:
            expansion = synthesizer.expand(operation, variant)
            database.store(operation, variant, block_size, expansion)
        basic.statements.extend(expansion)

    return Stage1Result(program=basic, variant_choices=chosen, sites=sites)


def enumerate_variant_choices(sites: List[HlacSite],
                              max_candidates: int) -> List[Dict[int, str]]:
    """Enumerate variant-choice dictionaries for the autotuner.

    The first candidate uses the default variant everywhere.  Further
    candidates change one HLAC site at a time (the paper's algorithmic
    autotuning explores Cl1ck's alternatives per HLAC); the total number of
    candidates is capped by ``max_candidates``.
    """
    candidates: List[Dict[int, str]] = [{}]
    for site in sites:
        for variant in site.variants[1:]:
            if len(candidates) >= max_candidates:
                return candidates
            candidates.append({site.index: variant})
    return candidates
