"""Multi-process serving tests: cross-process single-flight leases, the
pre-forked worker pool, and the disk store under multi-writer load.

Everything here runs real processes (``multiprocessing`` ``"fork"``
context) against one shared :class:`DiskKernelStore` root -- the same
shape as ``python -m repro.service serve --workers N``:

* **stress**  -- 4 processes x 8 threads hammer one cold key; exactly one
  generation happens anywhere (the store journal is the witness) and all
  32 callers get byte-identical kernels.
* **chaos**   -- the lease holder is SIGKILLed mid-generation; a second
  process reaps the dead holder's lease (same-host pid liveness, no ttl
  wait) and completes; a partially committed artifact is never served.
* **torture** -- concurrent processes put/get/delete the same shards of a
  bounded store; no torn JSON, every surviving entry loads, shard
  accounting stays consistent.
* **pool**    -- a SIGKILLed worker is replaced automatically; the CLI
  ``serve --workers 2`` drains cleanly on SIGTERM.
"""

import hashlib
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import StoreError
from repro.service import (DiskKernelStore, KernelService, LeaseManager,
                           MemoryKernelStore, ServiceClient, WorkerPool,
                           make_request)
from repro.slingen import Options

try:
    _MP = multiprocessing.get_context("fork")
except ValueError:  # pragma: no cover - non-POSIX
    _MP = None

pytestmark = pytest.mark.skipif(
    _MP is None, reason="needs the 'fork' multiprocessing start method")

SPEC = "potrf:4"
JOIN_TIMEOUT_S = 120.0


def _options():
    return Options(max_variants=4, annotate_code=False)


def _make_service(root, journal=None, **lease_kwargs):
    store = DiskKernelStore(root=root, journal=journal)
    return KernelService(store=store, options=_options(),
                         leases=LeaseManager.for_store(store,
                                                       **lease_kwargs))


def _journal_lines(path):
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def _join_all(procs):
    for proc in procs:
        proc.join(timeout=JOIN_TIMEOUT_S)
    alive = [proc.pid for proc in procs if proc.is_alive()]
    if alive:
        for proc in procs:
            if proc.is_alive():
                proc.kill()
        pytest.fail(f"worker processes wedged: {alive}")


# -- stress: N processes x M threads, one cold key, one generation -----------


def _stress_child(root, journal, spec, threads, start, queue):
    service = _make_service(root, journal=journal)
    barrier = threading.Barrier(threads)
    hashes = [None] * threads
    errors = []

    def caller(idx):
        try:
            barrier.wait()
            response = service.generate(make_request(spec))
            hashes[idx] = hashlib.sha256(
                response.result.c_code.encode("utf-8")).hexdigest()
        except Exception as exc:  # pragma: no cover - surfaced in parent
            errors.append(repr(exc))

    start.wait()
    workers = [threading.Thread(target=caller, args=(idx,))
               for idx in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    queue.put({
        "pid": os.getpid(),
        "hashes": hashes,
        "errors": errors,
        "generations": service.stats.generations,
        "lease_stats": service.leases.stats(),
    })


class TestCrossProcessStampede:
    def test_one_generation_for_32_concurrent_callers(self, tmp_path):
        """4 processes x 8 threads on one cold key: the journal must show
        exactly one Stage 1-3 commit, and every caller the same bytes."""
        procs, threads = 4, 8
        root = str(tmp_path / "cache")
        journal = str(tmp_path / "journal.jsonl")
        start = _MP.Barrier(procs)
        queue = _MP.Queue()
        children = [
            _MP.Process(target=_stress_child,
                        args=(root, journal, SPEC, threads, start, queue))
            for _ in range(procs)]
        for child in children:
            child.start()
        _join_all(children)

        reports = [queue.get(timeout=10) for _ in range(procs)]
        for report in reports:
            assert report["errors"] == []

        lines = _journal_lines(journal)
        assert len(lines) == 1, \
            f"expected exactly 1 generation, journal shows {len(lines)}"

        hashes = [h for report in reports for h in report["hashes"]]
        assert len(hashes) == procs * threads
        assert None not in hashes
        assert len(set(hashes)) == 1, \
            "callers observed different kernel bytes"

        # The stats add up: exactly one process ran the pipeline.  Each
        # other process's flight leader either adopted through the lease
        # layer or hit the store on its pre-lease re-probe (a race both
        # of whose arms share the winner's artifact), so adoptions are
        # bounded by the losing leaders -- and nothing crashed, so
        # nothing was reaped and no follower timed out.
        assert sum(r["generations"] for r in reports) == 1
        acquired = sum(r["lease_stats"]["acquired"] for r in reports)
        adopted = sum(r["lease_stats"]["adopted"] for r in reports)
        assert acquired >= 1
        assert adopted <= procs - 1
        for report in reports:
            stats = report["lease_stats"]
            assert stats["released"] <= stats["acquired"]
            assert stats["reaped"] == 0
            assert stats["wait_timeouts"] == 0


# -- chaos: SIGKILL the lease holder mid-generation --------------------------


def _holder_child(lease_root, key, holding):
    leases = LeaseManager(lease_root)
    lease = leases.try_acquire(key)
    assert lease is not None
    holding.set()
    # "Mid-generation": hold the lease forever; the parent SIGKILLs us.
    time.sleep(600)


class TestChaos:
    def test_sigkilled_holder_is_reaped_and_key_completes(self, tmp_path):
        """A crashed holder must not wedge the key: the survivor detects
        the dead pid (no ttl wait), reaps, generates, and commits."""
        root = str(tmp_path / "cache")
        journal = str(tmp_path / "journal.jsonl")
        service = _make_service(root, journal=journal)
        request = make_request(SPEC)
        key = service.request_key(request)

        holding = _MP.Event()
        child = _MP.Process(target=_holder_child,
                            args=(service.leases.root, key, holding))
        child.start()
        assert holding.wait(timeout=30), "holder never acquired the lease"
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=30)
        assert child.exitcode == -signal.SIGKILL

        stamp = service.leases.holder(key)
        assert stamp is not None and stamp["pid"] == child.pid

        started = time.monotonic()
        response = service.generate(request)
        elapsed = time.monotonic() - started
        assert not response.cache_hit and not response.coalesced
        assert response.result.c_code
        # Dead-pid reaping is immediate -- far inside the 30 s ttl (the
        # expiry budget) and nowhere near the 120 s follower wait.
        assert elapsed < service.leases.ttl_s
        assert service.leases.stats()["reaped"] == 1
        assert len(_journal_lines(journal)) == 1
        assert service.leases.holder(key) is None

    def test_expired_lease_of_live_holder_is_reaped(self, tmp_path):
        """A live process that overstays its ttl loses the key: expiry
        alone makes the lease reapable within the ttl budget."""
        root = str(tmp_path / "cache")
        store = DiskKernelStore(root=root)
        overstayer = LeaseManager.for_store(store, ttl_s=0.2)
        lease = overstayer.try_acquire("ab" * 32)
        assert lease is not None
        time.sleep(0.3)

        service = KernelService(store=store, options=_options(),
                                leases=LeaseManager.for_store(store))
        # Same lease root, fresh manager: it must see the expired stamp.
        stamp = service.leases.holder("ab" * 32)
        assert stamp is not None
        assert service.leases._is_stale(stamp)
        assert service.leases.try_acquire("ab" * 32) is not None
        assert service.leases.stats()["reaped"] == 1
        # The displaced holder's release must not remove the new lease.
        overstayer.release(lease)
        assert service.leases.holder("ab" * 32) is not None

    def test_partial_artifact_is_never_served(self, tmp_path):
        """An entry dir without meta.json (writer crashed pre-commit) is
        a miss, and the next generation commits a complete entry."""
        root = str(tmp_path / "cache")
        service = _make_service(root)
        request = make_request(SPEC)
        key = service.request_key(request)
        entry = os.path.join(root, key[:2], key)
        os.makedirs(entry)
        with open(os.path.join(entry, "kernel.c"), "w") as handle:
            handle.write("/* torn: committed without meta.json */")

        assert service.store.get(key) is None
        response = service.generate(request)
        assert not response.cache_hit
        meta = service.store.metadata(key)
        assert meta is not None and meta["key"] == key
        assert "torn" not in response.result.c_code

    def test_corrupt_lease_stamp_does_not_wedge(self, tmp_path):
        """A torn/foreign lease file is treated as expired and reaped."""
        leases = LeaseManager(str(tmp_path / "leases"))
        key = "cd" * 32
        path = leases._lease_path(key)
        os.makedirs(os.path.dirname(path))
        with open(path, "w") as handle:
            handle.write("{not json")
        assert leases.try_acquire(key) is not None
        assert leases.stats()["reaped"] == 1


# -- torture: concurrent writers on a bounded store --------------------------


def _torture_child(root, keys, payload, seed, queue):
    import random
    rng = random.Random(seed)
    store = DiskKernelStore(root=root, max_entries=8)
    errors = []
    for _ in range(60):
        key = rng.choice(keys)
        op = rng.random()
        try:
            if op < 0.5:
                store.put(key, payload)
            elif op < 0.9:
                result = store.get(key)
                if result is not None and result.c_code != payload.c_code:
                    errors.append(f"torn read on {key[:8]}")
            else:
                store.delete(key)
        except StoreError as exc:  # pragma: no cover - surfaced in parent
            errors.append(repr(exc))
    queue.put({"pid": os.getpid(), "errors": errors})


@pytest.fixture(scope="module")
def one_result():
    """One real GenerationResult, generated once and inherited via fork."""
    service = KernelService(store=MemoryKernelStore(), options=_options())
    return service.generate(make_request(SPEC)).result


class TestMultiWriterTorture:
    def test_concurrent_writers_keep_the_store_consistent(
            self, tmp_path, one_result):
        """4 processes put/get/delete/evict the same two shards; the
        store must come out scan-clean: every meta.json parses, every
        entry loads, shard accounting matches the key listing."""
        root = str(tmp_path / "cache")
        # 12 keys packed into two shards, so eviction and commit traffic
        # collide on the same directories constantly.
        keys = [f"aa{i:062x}" for i in range(6)] + \
               [f"bb{i:062x}" for i in range(6)]
        queue = _MP.Queue()
        children = [
            _MP.Process(target=_torture_child,
                        args=(root, keys, one_result, seed, queue))
            for seed in range(4)]
        for child in children:
            child.start()
        _join_all(children)
        reports = [queue.get(timeout=10) for _ in range(4)]
        for report in reports:
            assert report["errors"] == []

        # Fresh scan of the surviving tree: nothing torn, nothing stuck.
        store = DiskKernelStore(root=root)
        survivors = store.keys()
        assert set(survivors) <= set(keys)
        for key in survivors:
            meta_path = os.path.join(root, key[:2], key, "meta.json")
            with open(meta_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)      # no torn JSON
            assert meta["key"] == key
            loaded = store.get(key)
            assert loaded is not None
            assert loaded.c_code == one_result.c_code
        assert store.corrupt_dropped == 0

        shards = store.shard_stats()
        assert sum(doc["entries"] for doc in shards.values()) \
            == len(survivors)
        for shard, doc in shards.items():
            listed = [k for k in survivors if k[:2] == shard]
            assert doc["entries"] == len(listed)
            if listed:
                assert doc["bytes"] > 0
                assert doc["lru_key"] in listed

        # LRU accounting still enforces the bound going forward.
        bounded = DiskKernelStore(root=root, max_entries=4)
        bounded.put(f"cc{0:062x}", one_result)
        assert len(bounded.keys()) <= 4


# -- the worker pool itself --------------------------------------------------


def _pool_factory(root):
    def factory():
        return _make_service(root)
    return factory


class TestWorkerPool:
    def test_dead_worker_is_replaced(self, tmp_path):
        """SIGKILL one worker: the monitor forks a replacement and the
        pool keeps answering; shutdown still drains cleanly."""
        pool = WorkerPool(_pool_factory(str(tmp_path / "cache")),
                          workers=2, port=0, quiet=True)
        with pool:
            client = ServiceClient(pool.url)
            client.wait_healthy(timeout=30)
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                pids = pool.worker_pids()
                if pool.restarts >= 1 and len(pids) == 2 \
                        and victim not in pids:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("dead worker was never replaced")
            assert client.healthz()["status"] == "ok"
        summary = pool.shutdown()
        assert summary["restarts"] >= 1
        assert summary["killed"] == 0

    def test_worker_info_and_lease_stats_reach_stats(self, tmp_path):
        """/stats from a pool worker names the worker and its lease
        counters (each worker samples its own process)."""
        pool = WorkerPool(_pool_factory(str(tmp_path / "cache")),
                          workers=2, port=0, quiet=True)
        with pool:
            client = ServiceClient(pool.url)
            client.wait_healthy(timeout=30)
            client.generate(spec=SPEC, include_code=False)
            doc = client.stats()
            assert doc["worker"]["pid"] in pool.worker_pids()
            assert 0 <= doc["worker"]["index"] < 2
            leases = doc["leases"]
            for counter in ("acquired", "adopted", "reaped",
                            "wait_timeouts", "released"):
                assert isinstance(leases[counter], int)
                assert leases[counter] >= 0

    def test_rejects_zero_workers(self, tmp_path):
        from repro.errors import ServiceError
        with pytest.raises(ServiceError, match="workers must be"):
            WorkerPool(_pool_factory(str(tmp_path / "c")), workers=0,
                       port=0)

    def test_cli_serve_workers_drains_cleanly_on_sigterm(self, tmp_path):
        """The CLI pool path end to end: boot ``serve --workers 2``,
        check health over HTTP, SIGTERM, and require exit code 0 (every
        worker drained within the grace budget)."""
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(repo_root, "src") + os.pathsep \
            + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service",
             "--store", str(tmp_path / "cache"),
             "serve", "--workers", "2", "--port", "0", "--quiet"],
            cwd=repo_root, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            url = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if "listening on" in line:
                    url = line.split("listening on ")[1].split()[0]
                    break
                if proc.poll() is not None:
                    pytest.fail(f"serve exited early: {proc.returncode}")
            assert url, "never saw the listening banner"
            assert "workers=2" in line
            ServiceClient(url).wait_healthy(timeout=30)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            tail = proc.stdout.read()
            assert "exit codes [0, 0]" in tail
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
