"""Tests for the C backends (unparser + compile-and-run)."""

import numpy as np
import pytest

from repro.applications import make_case
from repro.backend import (compile_kernel, compiler_available,
                           unparse_function)
from repro.cir import (Affine, Assign, Buffer, FloatConst, For, Function,
                       ScalarVar, Store, Load, BinOp, VBlend, VecVar, VLoad,
                       VStore)
from repro.slingen import Options, SLinGen


def _simple_scalar_function():
    a = Buffer("a", 1, 4, "in")
    out = Buffer("out", 1, 4, "out")
    acc = ScalarVar("acc")
    body = [For("i", 0, 4, 1,
                [Assign(acc, BinOp("mul", Load(a, Affine.var("i")),
                                   FloatConst(2.0))),
                 Store(out, Affine.var("i"), acc)])]
    return Function("scale2", [a, out], [], body, vector_width=1)


class TestUnparser:
    def test_scalar_function_text(self):
        code = unparse_function(_simple_scalar_function())
        assert "void scale2(const double* restrict a, double* restrict out)" \
            in code
        assert "for (int i = 0; i < 4; i += 1)" in code
        assert "#include <math.h>" in code
        assert "immintrin" not in code

    def test_vector_function_uses_intrinsics_and_masks(self):
        a = Buffer("a", 1, 6, "in")
        out = Buffer("out", 1, 6, "out")
        v = VecVar("v")
        mask = (True, True, False, False)
        body = [Assign(v, VLoad(a, Affine.constant(4), 4, mask)),
                VStore(out, Affine.constant(4), v, 4, mask),
                VStore(out, Affine.constant(0),
                       VBlend(VLoad(a, Affine.constant(0)),
                              VLoad(a, Affine.constant(0)), 0x3))]
        func = Function("vk", [a, out], [], body, vector_width=4)
        code = unparse_function(func)
        assert "_mm256_maskload_pd" in code
        assert "_mm256_maskstore_pd" in code
        assert "_mm256_blend_pd" in code
        assert "_mm256_set_epi64x" in code

    def test_generated_kernel_declares_temporaries(self):
        case = make_case("kf", 6)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        assert "double lg_tmp" in generated.c_code or \
            "double c1_t" in generated.c_code

    def test_storage_groups_share_one_pointer(self):
        case = make_case("kf", 6)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        signature = next(line for line in generated.c_code.splitlines()
                         if line.startswith("void "))
        # U overwrites M3: only the M3 pointer appears in the signature.
        assert "double* restrict M3" in signature
        assert "restrict U" not in signature


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
class TestCompileAndRun:
    def test_compile_simple_kernel(self):
        func = _simple_scalar_function()
        code = unparse_function(func)
        kernel = compile_kernel(code, func)
        result = kernel.run({"a": np.array([[1.0, 2.0, 3.0, 4.0]])})
        np.testing.assert_allclose(result["out"], [[2.0, 4.0, 6.0, 8.0]])

    def test_compile_vectorized_generated_code(self):
        case = make_case("trsyl", 6)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        inputs = case.make_inputs(2)
        outputs = generated.compile_and_run(inputs)
        expected = case.reference_outputs(inputs)
        np.testing.assert_allclose(outputs["X"], expected["X"], atol=1e-7)


class TestFindCompiler:
    def test_cc_environment_variable_wins(self, tmp_path, monkeypatch):
        fake = tmp_path / "my-super-cc"
        fake.write_text("#!/bin/sh\nexit 0\n")
        fake.chmod(0o755)
        monkeypatch.setenv("CC", str(fake))
        from repro.backend.compile import find_c_compiler
        assert find_c_compiler() == str(fake)

    def test_unusable_cc_falls_back_to_probing(self, monkeypatch):
        monkeypatch.setenv("CC", "/definitely/not/a/compiler")
        from repro.backend.compile import find_c_compiler
        found = find_c_compiler()
        # Falls back to cc/gcc/clang probing; never returns the bogus CC.
        assert found != "/definitely/not/a/compiler"

    def test_empty_cc_ignored(self, monkeypatch):
        monkeypatch.setenv("CC", "   ")
        from repro.backend.compile import find_c_compiler
        assert find_c_compiler() != "   "


@pytest.mark.skipif(not compiler_available(), reason="no C compiler")
class TestObjectCache:
    def test_compile_kernel_reuses_cached_object(self, tmp_path):
        func = _simple_scalar_function()
        code = unparse_function(func)
        first = compile_kernel(code, func, cache_key="k" * 64,
                               cache_dir=str(tmp_path))
        assert first.library_path.startswith(str(tmp_path))
        # Second compile with the same key must reuse the same .so path.
        second = compile_kernel(code, func, cache_key="k" * 64,
                                cache_dir=str(tmp_path))
        assert second.library_path == first.library_path
        result = second.run({"a": np.array([[1.0, 2.0, 3.0, 4.0]])})
        np.testing.assert_allclose(result["out"], [[2.0, 4.0, 6.0, 8.0]])
        # Different key -> different cached object.
        third = compile_kernel(code, func, cache_key="x" * 64,
                               cache_dir=str(tmp_path))
        assert third.library_path != first.library_path
