"""Tests for the CEGIS verified-optimization tier: rewrite-catalog laws
over the whole fuzz corpus, the fix bank, the verifier, the driver loop,
service/tuner wiring, and the client's jittered busy backoff."""

import dataclasses
import io
import json
import os
import time
import urllib.error
import urllib.request

import pytest

from repro.cegis import (CegisOutcome, FixBank, FixRecord, apply_sequence,
                         catalog, default_fixbank_dir, find_counterexample,
                         fixbank_key, get_rewrite, known_ids,
                         optimize_program)
from repro.cegis.fixbank import FIXBANK_SCHEMA_VERSION
from repro.errors import CegisError, ConfigurationError, ReproError, \
    ServiceError
from repro.fuzz import load_corpus
from repro.service import (KernelService, MemoryKernelStore, ServiceClient,
                           canonical_program, make_request)
from repro.slingen import Options, SLinGen
from repro.tuning import Autotuner

#: Cheap deterministic backend pair for verification in tests -- no C
#: compiler involved, still a genuine differential check.
BACKENDS = "interpreter,numpy"


def _options():
    return Options(max_variants=2, annotate_code=False)


# ---------------------------------------------------------------------------
# Shared fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus_basics():
    """(entry_id, basic Program) for every corpus entry that generates.

    The corpus is the law-test universe: every minimized repro the fuzzer
    ever landed, i.e. exactly the programs that historically found bugs.
    """
    basics = []
    for entry in load_corpus():
        options = dataclasses.replace(entry.case.options,
                                      verified_rewrites=())
        try:
            result = SLinGen(options).generate_result(
                entry.case.program.parse())
        except ReproError:
            continue  # rejected programs have no basic program to rewrite
        if result.basic_program is not None:
            basics.append((entry.entry_id, result.basic_program))
    assert len(basics) >= 5, "law tests need a non-trivial corpus"
    return basics


@pytest.fixture(scope="module")
def potrf_outcome():
    """One real CEGIS run on potrf:4, shared across the wiring tests."""
    request = make_request("potrf:4")
    outcome = optimize_program(request.program, _options(), budget=2,
                               backends=BACKENDS, label="potrf:4")
    return request, outcome


# ---------------------------------------------------------------------------
# Rewrite catalog laws
# ---------------------------------------------------------------------------


class TestCatalogLaws:
    def test_ids_are_stable_and_unique(self):
        ids = known_ids()
        assert len(ids) == len(set(ids))
        assert all(rewrite.id == ids[i]
                   for i, rewrite in enumerate(catalog()))
        with pytest.raises(CegisError, match="unknown rewrite"):
            get_rewrite("no-such-rewrite")

    def test_transforms_are_pure_and_deterministic(self, corpus_basics):
        for rewrite in catalog():
            for entry_id, program in corpus_basics:
                before = canonical_program(program)
                first = rewrite.apply(program)
                assert canonical_program(program) == before, \
                    f"{rewrite.id} mutated its input on {entry_id}"
                second = rewrite.apply(program)
                assert (first is None) == (second is None), \
                    f"{rewrite.id} is nondeterministic on {entry_id}"
                if first is not None:
                    assert canonical_program(first) \
                        == canonical_program(second), \
                        f"{rewrite.id} is nondeterministic on {entry_id}"

    def test_transforms_are_idempotent_or_none(self, corpus_basics):
        for rewrite in catalog():
            for entry_id, program in corpus_basics:
                result = rewrite.apply(program)
                if result is None:
                    continue
                assert rewrite.apply(result) is None, \
                    f"{rewrite.id} is not idempotent on {entry_id}"

    def test_transforms_preserve_the_signature(self, corpus_basics):
        for rewrite in catalog():
            for entry_id, program in corpus_basics:
                result = rewrite.apply(program)
                if result is None:
                    continue
                for name, operand in program.operands.items():
                    twin = result.operands.get(name)
                    assert twin is not None, \
                        f"{rewrite.id} dropped {name} on {entry_id}"
                    assert (twin.rows, twin.cols, twin.io) \
                        == (operand.rows, operand.cols, operand.io)
                for name, operand in result.operands.items():
                    if name in program.operands:
                        continue
                    # anything new is an internal scalar temp, never a
                    # change to what the kernel takes or promises
                    assert operand.is_scalar and not operand.is_input, \
                        f"{rewrite.id} added operand {name} on {entry_id}"

    def test_catalog_fires_on_the_corpus(self, corpus_basics):
        fired = {rewrite.id for rewrite in catalog()
                 for _, program in corpus_basics
                 if rewrite.apply(program) is not None}
        assert len(fired) >= 3, f"catalog barely fires: {sorted(fired)}"

    def test_apply_sequence_skips_inapplicable(self, corpus_basics):
        _, program = corpus_basics[0]
        assert apply_sequence((), program) is program
        with pytest.raises(CegisError):
            apply_sequence(("no-such-rewrite",), program)

    def test_options_validate_rejects_unknown_ids(self):
        with pytest.raises(ConfigurationError, match="no-such-rewrite"):
            Options(verified_rewrites=("no-such-rewrite",)).validate()
        options = Options(verified_rewrites=["fuse-scalar"]).validate()
        assert options.verified_rewrites == ("fuse-scalar",)


# ---------------------------------------------------------------------------
# Fix bank
# ---------------------------------------------------------------------------


def _record(key="00" * 32, accepted=("fuse-scalar",), refuted=()):
    return FixRecord(key=key, program_name="potrf", label="potrf:4",
                     seed=0, budget=2, backends=["interpreter", "numpy"],
                     tol=1e-9, ref_tol=1e-6, accepted=list(accepted),
                     refuted=[dict(entry) for entry in refuted])


class TestFixBank:
    def test_round_trip_and_stats(self, tmp_path):
        bank = FixBank(root=str(tmp_path))
        key = "ab" * 32
        assert bank.get(key) is None and key not in bank
        bank.put(key, _record(key))
        assert key in bank and len(bank) == 1
        record = bank.get(key)
        assert record.accepted == ["fuse-scalar"]
        assert record.created_at > 0
        assert bank.get(key).label == "potrf:4"     # hot-cache path
        stats = bank.stats()
        assert stats["entries"] == 1 and stats["hot_hits"] >= 1

    def test_survives_process_restart_simulation(self, tmp_path):
        key = "cd" * 32
        FixBank(root=str(tmp_path)).put(key, _record(key))
        again = FixBank(root=str(tmp_path))
        assert again.get(key).accepted == ["fuse-scalar"]

    def test_corrupt_record_quarantined_as_miss(self, tmp_path):
        bank = FixBank(root=str(tmp_path))
        key = "ef" * 32
        bank.put(key, _record(key))
        path = bank._record_path(key)
        bank = FixBank(root=str(tmp_path))          # cold hot-cache
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        assert bank.get(key) is None
        assert not os.path.exists(path), "corrupt record must be dropped"
        assert bank.corrupt_dropped == 1

    def test_schema_drift_is_a_miss(self, tmp_path):
        bank = FixBank(root=str(tmp_path))
        key = "12" * 32
        bank.put(key, _record(key))
        doc = _record(key).to_json()
        doc["schema"] = FIXBANK_SCHEMA_VERSION + 1
        with open(bank._record_path(key), "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
        assert FixBank(root=str(tmp_path)).get(key) is None

    def test_purge_and_records(self, tmp_path):
        bank = FixBank(root=str(tmp_path))
        for byte in ("aa", "bb"):
            bank.put(byte * 32, _record(byte * 32))
        assert {r.key for r in bank.records()} == {"aa" * 32, "bb" * 32}
        assert bank.purge() == 2 and len(bank) == 0

    def test_apply_drops_unknown_ids(self):
        record = _record(accepted=("fuse-scalar", "retired-rewrite"))
        options = record.apply(Options())
        assert options.verified_rewrites == ("fuse-scalar",)

    def test_verified_options(self, tmp_path):
        bank = FixBank(root=str(tmp_path))
        key = "34" * 32
        assert bank.verified_options(key, base=Options()) is None
        bank.put(key, _record(key))
        options = bank.verified_options(key, base=_options())
        assert options.verified_rewrites == ("fuse-scalar",)
        assert options.max_variants == 2            # base knobs survive

    def test_default_dir_honors_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FIXBANK", str(tmp_path / "elsewhere"))
        assert default_fixbank_dir() == str(tmp_path / "elsewhere")

    def test_fixbank_key_matches_tuning_key_space(self):
        from repro.tuning.db import tuning_key
        request = make_request("potrf:4")
        assert fixbank_key(request.program) == tuning_key(request.program)
        assert fixbank_key(request.program) \
            != fixbank_key(request.program, vectorize=False)


# ---------------------------------------------------------------------------
# Verifier + loop
# ---------------------------------------------------------------------------


class TestVerifierAndLoop:
    def test_identity_candidate_survives(self):
        request = make_request("potrf:4")
        assert find_counterexample(request.program, request.program,
                                   _options(), budget=1,
                                   backends=BACKENDS) is None

    def test_interface_mismatch_is_a_setup_error(self):
        a = make_request("potrf:4")
        b = make_request("gemm:4")
        with pytest.raises(CegisError, match="different interfaces"):
            find_counterexample(a.program, b.program, _options(),
                                budget=0, backends=BACKENDS)

    def test_loop_accepts_and_refutes_on_potrf(self, potrf_outcome):
        _, outcome = potrf_outcome
        assert outcome.accepted, "potrf:4 must accept some rewrites"
        refuted_ids = [entry["id"] for entry in outcome.refuted]
        assert "tri-unit-diag" in refuted_ids, \
            "the unit-diagonal shortcut must be caught on a real Cholesky"
        (entry,) = [e for e in outcome.refuted
                    if e["id"] == "tri-unit-diag"]
        assert entry["seed"] >= 0, "refutation must carry a concrete input"
        assert set(outcome.accepted).isdisjoint(refuted_ids)

    def test_counterexample_replays_with_zero_budget(self, potrf_outcome):
        request, outcome = potrf_outcome
        (entry,) = [e for e in outcome.refuted
                    if e["id"] == "tri-unit-diag"]
        trial = dataclasses.replace(
            _options(), verified_rewrites=("tri-unit-diag",))
        counterexample = find_counterexample(
            request.program, request.program, _options(), options_b=trial,
            seeds=[int(entry["seed"])], budget=0, backends=BACKENDS)
        assert counterexample is not None
        assert counterexample.seed == int(entry["seed"])

    def test_cli_replay_reconstructs_trial_time_prefix(self, tmp_path,
                                                       potrf_outcome,
                                                       capsys):
        """``replay`` must compose each refuted rewrite with the accepted
        ids that preceded it in catalog order (what the loop actually
        tried), not the full final accepted set -- under the latter a
        first-in-catalog rewrite like tri-unit-diag can stop firing and
        the banked counterexample is falsely reported stale."""
        from repro.cegis.__main__ import main
        request, outcome = potrf_outcome
        bank = FixBank(root=str(tmp_path))
        bank.put(outcome.key, outcome.to_record())
        code = main(["--db", str(tmp_path), "replay", "potrf:4", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["stale"] == 0
        statuses = {r["rewrite"]: r["status"] for r in doc["results"]}
        assert statuses["tri-unit-diag"] == "refuted"

    def test_accepted_set_changes_and_preserves_the_kernel(self,
                                                           potrf_outcome):
        request, outcome = potrf_outcome
        base = _options()
        verified = dataclasses.replace(
            base, verified_rewrites=tuple(outcome.accepted))
        plain = SLinGen(base).generate_result(request.program)
        rewritten = SLinGen(verified).generate_result(request.program)
        assert canonical_program(plain.basic_program) \
            != canonical_program(rewritten.basic_program)
        # and by construction of the loop, outputs still agree
        assert find_counterexample(request.program, request.program, base,
                                   options_b=verified, budget=2,
                                   backends=BACKENDS) is None

    def test_outcome_banks_and_round_trips(self, tmp_path, potrf_outcome):
        request, outcome = potrf_outcome
        bank = FixBank(root=str(tmp_path))
        bank.put(outcome.key, outcome.to_record())
        record = FixBank(root=str(tmp_path)).get(outcome.key)
        assert record.accepted == list(outcome.accepted)
        assert record.counterexamples(), "refutation seeds must persist"
        assert record.apply(Options()).verified_rewrites \
            == tuple(outcome.accepted)
        assert outcome.key == fixbank_key(request.program)

    def test_outcome_summary_shape(self, potrf_outcome):
        _, outcome = potrf_outcome
        summary = outcome.summary()
        assert summary["label"] == "potrf:4"
        assert summary["accepted"] == list(outcome.accepted)
        assert isinstance(outcome, CegisOutcome)


# ---------------------------------------------------------------------------
# Service + tuner wiring
# ---------------------------------------------------------------------------


class TestVerifiedWiring:
    def test_service_applies_banked_rewrites(self, tmp_path, potrf_outcome):
        request, outcome = potrf_outcome
        bank = FixBank(root=str(tmp_path))
        bank.put(outcome.key, outcome.to_record())

        plain = KernelService(store=MemoryKernelStore(), executor="thread")
        verified = KernelService(store=MemoryKernelStore(),
                                 executor="thread", fix_bank=bank)
        base = plain.generate(make_request("potrf:4", options=_options()))
        response = verified.generate(make_request("potrf:4",
                                                  options=_options()))
        assert not base.verified
        assert response.verified
        assert response.key != base.key, \
            "verified generation must not collide with unverified"
        assert response.result.options.verified_rewrites \
            == tuple(outcome.accepted)
        assert verified.stats.snapshot()["verified"] == 1

    def test_service_without_record_is_unverified(self, tmp_path):
        bank = FixBank(root=str(tmp_path))
        service = KernelService(store=MemoryKernelStore(),
                                executor="thread", fix_bank=bank)
        response = service.generate(make_request("gemm:4",
                                                 options=_options()))
        assert not response.verified
        assert service.stats.snapshot()["verified"] == 0

    def test_tuner_composes_fix_records(self, tmp_path, potrf_outcome):
        request, outcome = potrf_outcome
        bank = FixBank(root=str(tmp_path))
        bank.put(outcome.key, outcome.to_record())
        tuner = Autotuner(measurer="interpreter", budget=1, fix_bank=bank)
        options = tuner.tuned_options(request.program, base=_options())
        assert options is not None
        assert options.verified_rewrites == tuple(outcome.accepted)


# ---------------------------------------------------------------------------
# Client backoff jitter
# ---------------------------------------------------------------------------


def _always_busy(monkeypatch, sleeps):
    def fake_urlopen(request, timeout=None):
        raise urllib.error.HTTPError(
            request.full_url, 503, "server busy", hdrs=None,
            fp=io.BytesIO(b'{"error": "server busy"}'))
    monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
    monkeypatch.setattr(time, "sleep", sleeps.append)


class TestClientJitter:
    def test_backoff_is_jittered_bounded_and_seedable(self, monkeypatch):
        sleeps: list = []
        _always_busy(monkeypatch, sleeps)
        client = ServiceClient("http://127.0.0.1:1", busy_retries=6,
                               busy_backoff_s=0.05, busy_backoff_cap_s=0.4,
                               jitter_seed=7)
        with pytest.raises(ServiceError, match="503"):
            client.generate(spec="potrf:4")
        assert len(sleeps) == 6, "one sleep per retry"
        assert sleeps[0] == pytest.approx(0.05), \
            "first backoff is the configured base"
        assert all(0.05 <= delay <= 0.4 for delay in sleeps[1:])
        assert len(set(sleeps)) > 1, "backoff must actually jitter"

        again: list = []
        _always_busy(monkeypatch, again)
        twin = ServiceClient("http://127.0.0.1:1", busy_retries=6,
                             busy_backoff_s=0.05, busy_backoff_cap_s=0.4,
                             jitter_seed=7)
        with pytest.raises(ServiceError):
            twin.generate(spec="potrf:4")
        assert again == sleeps, "same seed, same schedule"

        other: list = []
        _always_busy(monkeypatch, other)
        rival = ServiceClient("http://127.0.0.1:1", busy_retries=6,
                              busy_backoff_s=0.05, busy_backoff_cap_s=0.4,
                              jitter_seed=8)
        with pytest.raises(ServiceError):
            rival.generate(spec="potrf:4")
        assert other != sleeps, "different seeds decorrelate the herd"

    def test_unseeded_clients_decorrelate(self, monkeypatch):
        schedules = []
        for _ in range(2):
            sleeps: list = []
            _always_busy(monkeypatch, sleeps)
            client = ServiceClient("http://127.0.0.1:1", busy_retries=8,
                                   busy_backoff_s=0.05)
            with pytest.raises(ServiceError):
                client.generate(spec="potrf:4")
            schedules.append(tuple(sleeps))
        assert schedules[0] != schedules[1]
