"""Tests of the staged generation pipeline: phase keys, the artifact
cache, cross-variant reuse, and the public API facade.

The load-bearing properties:

* the phase/option-axis partition covers every ``Options`` field exactly
  once (a new field fails here until it is deliberately placed),
* a codegen sweep whose variants share a blocking factor builds Stage 1
  exactly once,
* cached generation is byte-identical to cold generation,
* the persistent layer quarantines corruption instead of raising, and
* the builder's memo survives concurrent access.
"""

import json
import os
import pickle
import threading

import pytest

from repro.errors import ConfigurationError
from repro.machine.microarch import default_machine
from repro.pipeline import keys
from repro.pipeline.cache import (PersistentPhaseStore, PhaseCache,
                                  PhaseTimings, reset_shared_phase_cache,
                                  shared_phase_cache)
from repro.pipeline.keys import (PHASE_AXES, PHASES, SEARCH_AXES,
                                 assert_partition_complete)
from repro.service.registry import build_case, parse_spec
from repro.slingen.generator import CandidateBuilder, SLinGen
from repro.slingen.options import Options


def make_case(spec="potrf:4"):
    return build_case(parse_spec(spec))


def sweep_variants(count=8):
    """``count`` codegen variants differing only in codegen axes (none
    overrides the blocking factor, so all share one Stage-1 artifact)."""
    from dataclasses import replace

    from repro.lgen.tiling import CodegenVariant

    base = CodegenVariant(vector_width=4)
    pool = [
        base,
        replace(base, unroll_trip_count=4, unroll_body_limit=32),
        replace(base, unroll_trip_count=16, unroll_body_limit=128),
        replace(base, use_shuffle_transpose=False),
        replace(base, scalar_replacement=False),
        replace(base, load_store_analysis=False),
        replace(base, unroll_trip_count=4, unroll_body_limit=32,
                scalar_replacement=False),
        replace(base, use_shuffle_transpose=False,
                load_store_analysis=False),
    ]
    assert len(pool) >= count and \
        all(v.block_size is None for v in pool)
    return pool[:count]


class TestKeyPartition:
    def test_partition_is_complete(self):
        # The real contract: every live Options field is assigned to
        # exactly one phase (or is search-control).
        assert_partition_complete()

    def test_missing_axis_is_detected(self, monkeypatch):
        trimmed = dict(PHASE_AXES)
        trimmed["lower"] = tuple(a for a in trimmed["lower"]
                                 if a != "vector_width")
        monkeypatch.setattr(keys, "PHASE_AXES", trimmed)
        with pytest.raises(ConfigurationError, match="unassigned"):
            assert_partition_complete()

    def test_duplicated_axis_is_detected(self, monkeypatch):
        doubled = dict(PHASE_AXES)
        doubled["optimize"] = doubled["optimize"] + ("vectorize",)
        monkeypatch.setattr(keys, "PHASE_AXES", doubled)
        with pytest.raises(ConfigurationError, match="more than one"):
            assert_partition_complete()

    def test_unknown_axis_is_detected(self, monkeypatch):
        monkeypatch.setattr(keys, "SEARCH_AXES",
                            SEARCH_AXES + ("no_such_option",))
        with pytest.raises(ConfigurationError, match="naming no"):
            assert_partition_complete()

    def test_keys_chain_and_separate(self):
        case = make_case()
        a = keys.stage1_key(case.program, 4, {})
        b = keys.stage1_key(case.program, 8, {})
        assert a != b                       # block size keys Stage 1
        ra = keys.rewrite_key(a, True, ())
        rb = keys.rewrite_key(b, True, ())
        assert ra != rb                     # parent key chains through
        assert keys.rewrite_key(a, False, ()) != ra
        la = keys.lower_key(ra, 4, True, "kernel", False)
        assert keys.lower_key(ra, 8, True, "kernel", False) != la
        oa = keys.optimize_key(la, True, 8, 64, True, True)
        assert keys.optimize_key(la, False, 8, 64, True, True) != oa


class TestPhaseCache:
    def test_hit_miss_and_stats(self):
        cache = PhaseCache()
        assert cache.get("stage1", "k") is None
        cache.put("stage1", "k", {"x": 1})
        assert cache.get("stage1", "k") == {"x": 1}
        stats = cache.stats()
        assert stats["phases"]["stage1"] == \
            {"hits": 1, "misses": 1, "puts": 1}
        assert stats["hits"] == 1 and stats["misses"] == 1
        cache.reset_stats()
        assert cache.stats()["misses"] == 0
        cache.clear()
        assert cache.get("stage1", "k") is None

    def test_artifacts_are_shared_not_copied(self):
        cache = PhaseCache()
        artifact = {"big": list(range(8))}
        cache.put("lower", "k", artifact)
        assert cache.get("lower", "k") is artifact

    def test_persistent_roundtrip_and_promotion(self, tmp_path):
        store = PersistentPhaseStore(str(tmp_path))
        warm = PhaseCache(persistent=store)
        warm.put("optimize", "a" * 64, {"payload": 7})
        # A fresh process (new hot layer, same directory) hits on disk.
        cold = PhaseCache(persistent=PersistentPhaseStore(str(tmp_path)))
        assert cold.get("optimize", "a" * 64) == {"payload": 7}
        assert cold.persistent.disk_hits == 1
        # Promoted to the hot layer: the second get never touches disk.
        assert cold.get("optimize", "a" * 64) == {"payload": 7}
        assert cold.persistent.reads == 1

    def test_corrupt_entry_is_quarantined(self, tmp_path):
        store = PersistentPhaseStore(str(tmp_path))
        key = "b" * 64
        store.put("stage1", key, {"ok": True})
        path = store._path("stage1", key)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert store.get("stage1", key) is None
        assert store.corrupt_dropped == 1
        assert not os.path.exists(path)     # quarantined, not left to rot
        # A non-pickle that *loads* but was torn mid-write also drops.
        with open(path, "wb") as handle:
            handle.write(pickle.dumps({"ok": True})[:-4])
        assert store.get("stage1", key) is None
        assert store.corrupt_dropped == 2

    def test_shared_cache_reads_environment(self, tmp_path, monkeypatch):
        reset_shared_phase_cache()
        monkeypatch.setenv("REPRO_PHASE_CACHE", str(tmp_path))
        try:
            cache = shared_phase_cache()
            assert cache is shared_phase_cache()    # one per process
            assert cache.persistent is not None
            assert cache.persistent.root == str(tmp_path)
        finally:
            reset_shared_phase_cache()

    def test_timings_accumulate(self):
        timings = PhaseTimings()
        timings.record("stage1", 0.25, hit=False)
        timings.record("stage1", 0.05, hit=True)
        doc = timings.as_dict()
        assert doc["stage1"]["calls"] == 2
        assert doc["stage1"]["hits"] == 1
        assert doc["stage1"]["seconds"] == pytest.approx(0.3)
        assert timings.total_seconds == pytest.approx(0.3)


class TestCrossVariantReuse:
    def test_sweep_builds_stage1_exactly_once(self):
        case = make_case()
        cache = PhaseCache()
        variants = sweep_variants(8)
        builder = CandidateBuilder(case.program,
                                   Options(vectorize=True,
                                           annotate_code=False),
                                   default_machine(), [{}], variants,
                                   nominal_flops=case.nominal_flops,
                                   phase_cache=cache)
        for point in builder.space().points():
            builder.candidate(point)
        phases = cache.stats()["phases"]
        assert phases["stage1"]["misses"] == 1
        assert phases["stage1"]["hits"] == len(variants) - 1
        # One rewrite too (same axes), and one optimize per variant.
        assert phases["rewrite"]["misses"] == 1
        assert phases["optimize"]["misses"] == len(variants)

    def test_builder_memo_is_thread_safe(self):
        case = make_case()
        builder = CandidateBuilder(case.program,
                                   Options(vectorize=True,
                                           annotate_code=False),
                                   default_machine(), [{}],
                                   sweep_variants(4),
                                   nominal_flops=case.nominal_flops,
                                   phase_cache=PhaseCache())
        points = list(builder.space().points())
        results = [[] for _ in range(4)]

        def sweep(bucket):
            for point in points:
                bucket.append(builder.candidate(point))

        threads = [threading.Thread(target=sweep, args=(bucket,))
                   for bucket in results]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every thread saw the same memoized candidate per point, and
        # each point was built exactly once.
        for bucket in results[1:]:
            for first, mine in zip(results[0], bucket):
                assert mine is first
        assert len(builder.built) == len(points)


#: Three registry workloads of different shapes (factorization, product,
#: triangular solve) -- cold and cached generation must agree on bytes.
CACHED_SPECS = ("potrf:4", "gemm:4", "trsm:4")


class TestCachedGenerationIsIdentical:
    @pytest.mark.parametrize("spec", CACHED_SPECS)
    def test_warm_c_is_byte_identical(self, spec):
        case = make_case(spec)
        cache = PhaseCache()
        generator = SLinGen(Options(vectorize=True, annotate_code=False),
                            phase_cache=cache)
        cold = generator.generate_result(case.program,
                                         nominal_flops=case.nominal_flops)
        warm = generator.generate_result(case.program,
                                         nominal_flops=case.nominal_flops)
        assert warm.c_code == cold.c_code
        assert warm.function.statement_count() == \
            cold.function.statement_count()
        # The warm pass was served entirely from the cache.
        stats = warm.phase_stats
        assert stats is not None
        for phase in PHASES:
            assert stats[phase]["hits"] == stats[phase]["calls"]

    def test_phase_timings_surface_in_summary(self):
        case = make_case()
        result = SLinGen(Options(vectorize=True, annotate_code=False),
                         phase_cache=PhaseCache()).generate_result(
            case.program, nominal_flops=case.nominal_flops)
        phases = result.summary()["phases"]
        for phase in PHASES:
            assert set(phases[phase]) == {"calls", "hits", "seconds"}
            assert phases[phase]["calls"] >= 1

    def test_persistent_layer_survives_process_restart(self, tmp_path):
        case = make_case()
        options = Options(vectorize=True, annotate_code=False)
        first = SLinGen(options, phase_cache=PhaseCache(
            persistent=PersistentPhaseStore(str(tmp_path))))
        cold = first.generate_result(case.program,
                                     nominal_flops=case.nominal_flops)
        # "Restart": a fresh hot layer over the same directory.
        store = PersistentPhaseStore(str(tmp_path))
        second = SLinGen(options, phase_cache=PhaseCache(persistent=store))
        warm = second.generate_result(case.program,
                                      nominal_flops=case.nominal_flops)
        assert warm.c_code == cold.c_code
        assert store.disk_hits > 0


class TestApiFacade:
    def test_every_public_name_resolves(self):
        import repro.api as api
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_generates(self):
        from repro.api import Options as ApiOptions
        from repro.api import SLinGen as ApiSLinGen
        case = make_case()
        result = ApiSLinGen(ApiOptions(vectorize=False)).generate_result(
            case.program)
        assert "void" in result.c_code


class TestPersistentStoreBound:
    """The persistent layer's size bound, GC, and purge path."""

    def _fill(self, store, count=10, size=800):
        for index in range(count):
            key = f"{index:02d}" * 20
            store.put("stage1", key, b"x" * size)
            # distinct mtimes so eviction order is deterministic
            path = store._path("stage1", key)
            os.utime(path, (index, index))
        return [f"{index:02d}" * 20 for index in range(count)]

    def test_parse_size(self):
        from repro.pipeline.cache import parse_size
        assert parse_size("512M") == 512 << 20
        assert parse_size("2g") == 2 << 30
        assert parse_size("1024") == 1024
        assert parse_size("0") is None and parse_size("") is None
        with pytest.raises(ConfigurationError):
            parse_size("lots")

    def test_overflowing_put_evicts_oldest_first(self, tmp_path):
        store = PersistentPhaseStore(str(tmp_path), max_bytes=5000)
        keys_in_order = self._fill(store)
        stats = store.stats()
        assert stats["total_bytes"] <= 5000
        assert stats["evictions"] > 0
        assert store.get("stage1", keys_in_order[0]) is None   # oldest
        assert store.get("stage1", keys_in_order[-1]) is not None

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = PersistentPhaseStore(str(tmp_path), max_bytes=None)
        self._fill(store)
        assert store.stats()["evictions"] == 0
        assert store.gc() == 0                      # no bound: no-op

    def test_purge_empties_and_counts(self, tmp_path):
        store = PersistentPhaseStore(str(tmp_path), max_bytes=None)
        keys_in_order = self._fill(store, count=4)
        assert store.purge() == 4
        assert store.total_bytes() == 0
        assert all(store.get("stage1", key) is None
                   for key in keys_in_order)

    def test_corrupt_drop_updates_size_accounting(self, tmp_path):
        store = PersistentPhaseStore(str(tmp_path), max_bytes=None)
        store.put("stage1", "ab" * 20, b"payload")
        total = store.total_bytes()
        path = store._path("stage1", "ab" * 20)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert store.get("stage1", "ab" * 20) is None
        assert store.stats()["corrupt_dropped"] == 1
        assert store.total_bytes() < total

    def test_purge_cli(self, tmp_path, capsys):
        from repro.pipeline.__main__ import main as pipeline_main
        store = PersistentPhaseStore(str(tmp_path), max_bytes=None)
        self._fill(store, count=3)
        code = pipeline_main(["purge", "--phase-cache", str(tmp_path),
                              "--yes", "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["removed"] == 3 and doc["bytes_after"] == 0
        assert pipeline_main(["purge"]) == 2        # no root configured
        capsys.readouterr()

    def test_gc_cli_requires_bound(self, tmp_path, monkeypatch, capsys):
        from repro.pipeline.__main__ import main as pipeline_main
        monkeypatch.delenv("REPRO_PHASE_CACHE_LIMIT", raising=False)
        assert pipeline_main(["purge", "--phase-cache", str(tmp_path),
                              "--gc"]) == 2
        capsys.readouterr()
        store = PersistentPhaseStore(str(tmp_path), max_bytes=None)
        self._fill(store)
        monkeypatch.setenv("REPRO_PHASE_CACHE_LIMIT", "5000")
        assert pipeline_main(["purge", "--phase-cache", str(tmp_path),
                              "--gc", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["gc"] and doc["removed"] > 0
        assert doc["bytes_after"] <= 5000
