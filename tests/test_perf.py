"""Tests for the continuous-performance subsystem (:mod:`repro.perf`):
manifests/suites, the append-only trajectory store's corruption tolerance
and append atomicity, the seed-migration shim, the noise-aware gate, the
deterministic trend report, and the CLI — plus the acceptance check that
the committed ``BENCH_trajectory.jsonl`` gates clean."""

import json
import os
import threading

import pytest

from repro.errors import PerfError
from repro.perf import (
    GateReport,
    Manifest,
    ManifestEntry,
    TrajectoryStore,
    compatibility_issues,
    environment_fingerprint,
    gate_records,
    load_manifest,
    migrate_seed_records,
    run_manifest,
    suite,
    suite_names,
    trend_report,
    unknown_environment,
)
from repro.perf.manifest import resolve
from repro.perf.trajectory import TRAJECTORY_SCHEMA_VERSION, record_is_valid

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: A plausible-but-fixed environment for synthetic records; tests that
#: need *incompatibility* perturb copies of it.
ENV = {"python": "3.11.0", "numpy": "2.0.0", "platform": "linux",
       "machine": "x86_64", "cpu_count": 8, "cc": "gcc",
       "vectorize": True, "vector_width": 4}


def make_record(entry="potrf:4/numpy/untuned", run_id="r1", median=1e-5,
                mad=0.0, env=ENV, commit="abc", ts=1.0, suite_name="smoke"):
    kernel, backend, mode = entry.split("/")
    return {
        "schema": TRAJECTORY_SCHEMA_VERSION, "run_id": run_id,
        "commit": commit, "ts": ts, "suite": suite_name, "entry": entry,
        "kernel": kernel, "size": 4, "backend": backend, "mode": mode,
        "applied": True, "repeats": 3, "median_seconds": median,
        "mad_seconds": mad, "flops": None, "correct": None,
        "env": dict(env),
    }


def make_run(run_id, medians, **kwargs):
    """One synthetic run: ``medians`` maps entry id -> median seconds."""
    return [make_record(entry=e, run_id=run_id, median=m, **kwargs)
            for e, m in sorted(medians.items())]


class TestManifest:
    def test_builtin_suites(self):
        assert set(suite_names()) == {"smoke", "figures", "full"}
        for name in suite_names():
            manifest = suite(name)
            assert manifest.entries
            assert len(set(manifest.entry_ids())) == len(manifest.entries)

    def test_smoke_suite_matches_the_seed_grid(self):
        # The smoke grid is deliberately the BENCH_seed.json grid (so
        # migrated seed records land on the same entry ids) plus the
        # warm-generation pseudo-entry.
        ids = suite("smoke").entry_ids()
        assert "potrf:4/numpy/untuned" in ids
        assert "gemm:8/compiled/untuned" in ids
        assert "potrf:8/pipeline/warm" in ids
        assert len(ids) == 2 * 2 * 3 + 1

    def test_pipeline_pseudo_entry_only_pairs_with_warm(self):
        ManifestEntry(kernel="potrf:8", backend="pipeline", mode="warm")
        with pytest.raises(PerfError, match="only combine"):
            ManifestEntry(kernel="potrf:8", backend="pipeline")
        with pytest.raises(PerfError, match="only combine"):
            ManifestEntry(kernel="potrf:8", backend="numpy", mode="warm")

    def test_entry_validation(self):
        with pytest.raises(PerfError):
            ManifestEntry(kernel="potrf:4", backend="fortran")
        with pytest.raises(PerfError):
            ManifestEntry(kernel="potrf:4", backend="numpy", mode="casual")
        with pytest.raises(PerfError):
            ManifestEntry(kernel="potrf:4", backend="numpy", repeats=0)

    def test_duplicate_entries_rejected(self):
        entry = ManifestEntry(kernel="potrf:4", backend="numpy")
        with pytest.raises(PerfError, match="duplicate"):
            Manifest(name="dup", entries=[entry, entry])

    def test_load_manifest_object_and_bare_list(self, tmp_path):
        body = [{"kernel": "potrf:4", "backend": "numpy"}]
        obj = tmp_path / "m1.json"
        obj.write_text(json.dumps({"name": "mine", "entries": body}))
        bare = tmp_path / "m2.json"
        bare.write_text(json.dumps(body))
        assert load_manifest(str(obj)).name == "mine"
        assert load_manifest(str(bare)).entry_ids() == \
            ["potrf:4/numpy/untuned"]

    def test_resolve_prefers_explicit_manifest(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(
            {"name": "custom",
             "entries": [{"kernel": "gemm:4", "backend": "interpreter"}]}))
        assert resolve("smoke", str(path)).name == "custom"
        assert resolve("figures", None).name == "figures"
        with pytest.raises(PerfError):
            resolve("no-such-suite", None)


class TestEnvironment:
    def test_fingerprint_is_complete_and_self_compatible(self):
        env = environment_fingerprint()
        for key in ("python", "numpy", "platform", "machine", "cpu_count",
                    "vectorize", "vector_width"):
            assert key in env
        assert compatibility_issues(env, env) == []

    def test_unknown_environment_is_never_comparable(self):
        env = environment_fingerprint()
        assert compatibility_issues(env, unknown_environment("seed"))
        assert compatibility_issues(unknown_environment("seed"), env)

    def test_field_mismatches_are_reported(self):
        a = dict(ENV)
        for key, value in [("cpu_count", 2), ("cc", "clang"),
                           ("vectorize", False), ("machine", "arm64"),
                           ("numpy", "1.26.0")]:
            b = dict(ENV)
            b[key] = value
            assert compatibility_issues(a, b), key


class TestTrajectoryStore:
    def test_roundtrip_and_run_grouping(self, tmp_path):
        store = TrajectoryStore(path=str(tmp_path / "t.jsonl"))
        assert store.load() == []           # missing file = empty history
        store.append(make_run("r1", {"potrf:4/numpy/untuned": 1e-5}))
        store.append(make_run("r2", {"potrf:4/numpy/untuned": 2e-5}))
        assert [run_id for run_id, _ in store.runs()] == ["r1", "r2"]
        assert store.latest_run()[0] == "r2"
        assert store.stats()["records"] == 2

    def test_append_refuses_invalid_records(self, tmp_path):
        store = TrajectoryStore(path=str(tmp_path / "t.jsonl"))
        with pytest.raises(PerfError):
            store.append([{"schema": 999}])
        assert not os.path.exists(store.path)   # nothing half-written

    def test_corruption_tolerance(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = TrajectoryStore(path=str(path))
        store.append(make_run("r1", {"potrf:4/numpy/untuned": 1e-5,
                                     "gemm:4/numpy/untuned": 2e-5}))
        blob = path.read_bytes()
        # garbage bytes in the middle + a torn (truncated) final append
        torn = json.dumps(make_record(run_id="r2")).encode()[:40]
        path.write_bytes(blob[:len(blob) // 2].rsplit(b"\n", 1)[0]
                         + b"\n\x00\xff not json\n"
                         + blob[len(blob) // 2:].split(b"\n", 1)[1]
                         + torn)
        records = store.load()
        assert store.dropped >= 1
        assert all(record_is_valid(r) for r in records)
        # a decodable but schema-foreign line is dropped and counted too
        with open(path, "ab") as handle:
            handle.write(b'{"schema": 999}\n')
        before = len(store.load())
        dropped = store.dropped
        assert dropped >= 2
        # and appending still works after corruption
        store.append(make_run("r3", {"potrf:4/numpy/untuned": 3e-5}))
        assert len(store.load()) == before + 1

    def test_concurrent_appends_interleave_whole_lines(self, tmp_path):
        store_path = str(tmp_path / "t.jsonl")
        n_threads, n_appends = 8, 25
        barrier = threading.Barrier(n_threads)

        def writer(tid):
            store = TrajectoryStore(path=store_path)
            barrier.wait()
            for i in range(n_appends):
                store.append([make_record(run_id=f"w{tid}", ts=float(i))])

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reader = TrajectoryStore(path=store_path)
        records = reader.load()
        assert reader.dropped == 0          # no torn lines
        assert len(records) == n_threads * n_appends
        per_writer = {}
        for record in records:
            per_writer.setdefault(record["run_id"], []).append(record["ts"])
        # each writer's own lines appear in its append order
        assert all(ts == sorted(ts) for ts in per_writer.values())


class TestSeedMigration:
    def test_committed_seed_file_migrates(self):
        records = migrate_seed_records(
            os.path.join(REPO_ROOT, "BENCH_seed.json"))
        assert len(records) == 12
        assert all(record_is_valid(r) for r in records)
        assert all(r["run_id"] == "seed" for r in records)
        ids = {r["entry"] for r in records}
        assert ids <= set(suite("smoke").entry_ids())
        # unknown environment: migrated history is never a gate baseline
        env = environment_fingerprint()
        assert all(compatibility_issues(env, r["env"]) for r in records)

    def test_bad_seed_rows_are_rejected(self, tmp_path):
        path = tmp_path / "seed.json"
        path.write_text(json.dumps([{"kernel": "potrf"}]))
        with pytest.raises(PerfError):
            migrate_seed_records(str(path))
        path.write_text("{}")
        with pytest.raises(PerfError):
            migrate_seed_records(str(path))


class TestGate:
    ENTRY = "potrf:4/numpy/untuned"

    def history(self):
        return (make_run("r1", {self.ENTRY: 1.00e-5})
                + make_run("r2", {self.ENTRY: 1.02e-5})
                + make_run("r3", {self.ENTRY: 0.98e-5}))

    def test_ok_and_exit_zero(self):
        candidate = make_run("r4", {self.ENTRY: 1.05e-5})
        report = gate_records(candidate, self.history())
        assert [d.status for d in report.decisions] == ["ok"]
        assert report.exit_code() == 0

    def test_injected_regression_fails(self):
        candidate = make_run("r4", {self.ENTRY: 5.0e-5})     # 5x slower
        report = gate_records(candidate, self.history())
        assert [d.status for d in report.decisions] == ["regression"]
        assert report.exit_code() == 1
        assert report.exit_code(warn_timing=True) == 0       # downgraded
        doc = report.to_json(warn_timing=True)
        assert doc["counts"]["regression"] == 1
        assert doc["exit_code"] == 0

    def test_improvement_is_reported(self):
        candidate = make_run("r4", {self.ENTRY: 0.2e-5})
        report = gate_records(candidate, self.history())
        assert [d.status for d in report.decisions] == ["improvement"]
        assert report.exit_code() == 0

    def test_noise_widens_the_threshold(self):
        # 1.35x slower: past the 25% floor, but the candidate's own MAD
        # is 10% of the baseline median, so the threshold is 1.6.
        candidate = make_run("r4", {self.ENTRY: 1.35e-5}, mad=0.1e-5)
        report = gate_records(candidate, self.history())
        decision = report.decisions[0]
        assert decision.threshold == pytest.approx(1.6)
        assert decision.status == "ok"

    def test_incompatible_history_is_refused(self):
        other = dict(ENV, cpu_count=64)
        history = make_run("r1", {self.ENTRY: 1e-9}, env=other)
        candidate = make_run("r2", {self.ENTRY: 1e-5})       # "10000x slower"
        report = gate_records(candidate, history)
        decision = report.decisions[0]
        assert decision.status == "no-baseline"
        assert decision.baseline_runs == 0
        assert any("incompatible" in note for note in decision.notes)
        assert report.exit_code() == 0

    def test_candidates_own_run_is_excluded_from_baseline(self):
        candidate = make_run("r1", {self.ENTRY: 1e-5})
        # history *contains* the candidate and nothing else comparable
        report = gate_records(candidate, candidate)
        assert report.decisions[0].status == "no-baseline"

    def test_structural_errors_always_fail(self):
        empty = gate_records([], self.history())
        assert empty.structural_errors
        assert empty.exit_code(warn_timing=True) == 1
        mixed = gate_records(make_run("a", {self.ENTRY: 1e-5})
                             + make_run("b", {self.ENTRY: 1e-5}),
                             self.history())
        assert any("mixes" in e for e in mixed.structural_errors)
        assert mixed.exit_code(warn_timing=True) == 1
        invalid = gate_records([{"schema": 999}], self.history())
        assert invalid.structural_errors
        assert invalid.exit_code(warn_timing=True) == 1

    def test_uncovered_suite_entries_are_reported_not_run(self):
        candidate = make_run("r4", {self.ENTRY: 1e-5})
        report = gate_records(candidate, self.history(),
                              suite_entries=[self.ENTRY,
                                             "gemm:8/compiled/untuned"])
        statuses = {d.entry: d.status for d in report.decisions}
        assert statuses["gemm:8/compiled/untuned"] == "not-run"
        assert report.exit_code() == 0      # informational, not structural

    def test_report_table_renders(self):
        report = gate_records(make_run("r4", {self.ENTRY: 1e-5}),
                              self.history())
        assert isinstance(report, GateReport)
        assert self.ENTRY in report.format_table()


class TestTrendReport:
    def test_deterministic_on_a_fixed_trajectory(self):
        history = (make_run("r1", {"a/numpy/untuned": 4e-5,
                                   "b/numpy/untuned": 2e-5})
                   + make_run("r2", {"a/numpy/untuned": 2e-5}))
        doc = trend_report(history)
        assert doc == trend_report(history)     # pure function of input
        assert json.dumps(doc, sort_keys=True) == \
            json.dumps(trend_report(list(history)), sort_keys=True)
        by_entry = {e["entry"]: e for e in doc["entries"]}
        trend = by_entry["a/numpy/untuned"]
        assert trend["runs"] == 2
        assert trend["first_median"] == pytest.approx(4e-5)
        assert trend["latest_median"] == pytest.approx(2e-5)
        assert trend["latest_vs_first"] == pytest.approx(0.5)
        assert [e["entry"] for e in doc["entries"]] == \
            sorted(by_entry)                    # stable ordering


class TestRunner:
    def test_tiny_manifest_end_to_end(self, tmp_path):
        manifest = Manifest(name="tiny", entries=[
            ManifestEntry(kernel="potrf:4", backend="interpreter",
                          repeats=2)])
        store = TrajectoryStore(path=str(tmp_path / "t.jsonl"))
        run = run_manifest(manifest, validate=True)
        assert [r["entry"] for r in run.records] == \
            ["potrf:4/interpreter/untuned"]
        record = run.records[0]
        assert record_is_valid(record)
        assert record["correct"] is True
        assert record["median_seconds"] > 0
        assert record["env"] == run.env
        assert compatibility_issues(record["env"], record["env"]) == []
        store.append(run.records)
        assert store.latest_run()[0] == run.run_id

    def test_pipeline_entry_measures_warm_generation(self):
        manifest = Manifest(name="gen", entries=[
            ManifestEntry(kernel="potrf:4", backend="pipeline",
                          mode="warm", repeats=2)])
        run = run_manifest(manifest, validate=True)
        record = run.records[0]
        assert record["entry"] == "potrf:4/pipeline/warm"
        assert record_is_valid(record)
        assert record["applied"] is True     # warm passes hit every phase
        assert record["correct"] is True     # warm C == cold C
        assert record["median_seconds"] > 0

    def test_unknown_kernel_is_a_perf_error(self):
        manifest = Manifest(name="bad", entries=[
            ManifestEntry(kernel="nosuch:4", backend="interpreter")])
        with pytest.raises(PerfError):
            run_manifest(manifest)


class TestCli:
    def run_cli(self, *argv):
        from repro.perf.__main__ import main
        return main(list(argv))

    def test_full_cycle(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        manifest.write_text(json.dumps([
            {"kernel": "potrf:4", "backend": "interpreter", "repeats": 2}]))
        trajectory = str(tmp_path / "t.jsonl")
        for _ in range(2):
            assert self.run_cli("--trajectory", trajectory, "run",
                                "--manifest", str(manifest)) == 0
        capsys.readouterr()
        assert self.run_cli("--trajectory", trajectory, "gate",
                            "--manifest", str(manifest), "--json") == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1
        assert doc["exit_code"] == 0
        assert doc["counts"]["regression"] == 0
        assert self.run_cli("--trajectory", trajectory, "report",
                            "--json") == 0
        trends = json.loads(capsys.readouterr().out)
        assert trends["entries"][0]["runs"] == 2
        assert self.run_cli("--trajectory", trajectory, "baseline",
                            "--manifest", str(manifest), "--json") == 0
        base = json.loads(capsys.readouterr().out)
        assert base["baselines"][0]["runs"] == 2

    def test_gate_rejects_injected_regression(self, tmp_path, capsys):
        store = TrajectoryStore(path=str(tmp_path / "t.jsonl"))
        store.append(make_run("r1", {"potrf:4/numpy/untuned": 1e-5}))
        store.append(make_run("r2", {"potrf:4/numpy/untuned": 1e-5}))
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(
            make_run("r3", {"potrf:4/numpy/untuned": 9e-5})))
        assert self.run_cli("--trajectory", store.path, "gate",
                            "--candidate", str(bad)) == 1
        capsys.readouterr()
        assert self.run_cli("--trajectory", store.path, "gate",
                            "--candidate", str(bad), "--warn-timing") == 0

    def test_gate_without_runs_or_candidate_errors(self, tmp_path, capsys):
        assert self.run_cli("--trajectory", str(tmp_path / "no.jsonl"),
                            "gate") == 1
        capsys.readouterr()

    def test_migrate_seed(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        trajectory = str(tmp_path / "t.jsonl")
        assert self.run_cli("--trajectory", trajectory,
                            "migrate-seed") == 0
        capsys.readouterr()
        store = TrajectoryStore(path=trajectory)
        assert store.stats()["records"] == 12
        # migrated history alone can never satisfy the gate's baselines
        assert self.run_cli("--trajectory", trajectory, "baseline",
                            "--json") == 0
        base = json.loads(capsys.readouterr().out)
        assert all(b["runs"] == 0 for b in base["baselines"])

    def test_errors_exit_two(self, tmp_path, capsys):
        assert self.run_cli("--trajectory", str(tmp_path / "t.jsonl"),
                            "run", "--manifest",
                            str(tmp_path / "missing.json")) == 2
        capsys.readouterr()


class TestCommittedTrajectory:
    """The acceptance criterion: the committed trajectory gates clean."""

    PATH = os.path.join(REPO_ROOT, "BENCH_trajectory.jsonl")

    def test_committed_trajectory_is_wholly_valid(self):
        store = TrajectoryStore(path=self.PATH)
        records = store.load()
        assert store.dropped == 0
        assert len(records) >= 24       # seed migration + >= 2 fresh runs
        assert len(store.runs()) >= 3

    def test_gate_passes_on_the_committed_trajectory(self, capsys):
        from repro.perf.__main__ import main
        assert main(["--trajectory", self.PATH, "gate", "--suite",
                     "smoke", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["structural_errors"] == []
        assert doc["counts"]["regression"] == 0
