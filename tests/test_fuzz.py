"""Tests of the differential fuzzing subsystem (repro.fuzz)."""

import json

import numpy as np
import pytest

from repro.backend.__main__ import main as backend_main
from repro.cir.builder import sanitize_identifier
from repro.errors import FuzzError
from repro.fuzz import (FuzzCase, FuzzDecl, FuzzProgram, load_corpus,
                        load_entry, make_inputs, options_from_json,
                        options_to_json, reference_outputs, replay_entry,
                        run_case, sample_case, save_entry, shrink_case)
from repro.fuzz.__main__ import main as fuzz_main
from repro.fuzz.oracle import _mismatch_mask
from repro.slingen.options import Options


def _case(source_statements, decls, dims, options=None, input_seed=7):
    program = FuzzProgram(name="handmade", dims=dims, decls=decls,
                          statements=source_statements)
    return FuzzCase(program=program, options=options or Options(),
                    input_seed=input_seed)


class TestSpec:
    def test_case_json_round_trip(self):
        case = sample_case(3)
        clone = FuzzCase.loads(case.dumps())
        assert clone.to_json() == case.to_json()
        assert clone.program.source() == case.program.source()

    def test_options_round_trip_keeps_only_non_defaults(self):
        options = Options(vectorize=False, block_size=3,
                          stage1_variants={2: "variant2"})
        doc = options_to_json(options)
        assert set(doc) == {"vectorize", "block_size", "stage1_variants"}
        restored = options_from_json(json.loads(json.dumps(doc)))
        assert restored == options
        assert restored.stage1_variants == {2: "variant2"}

    def test_unknown_option_field_is_rejected(self):
        with pytest.raises(FuzzError):
            options_from_json({"no_such_option": 1})

    def test_declaration_rendering(self):
        decl = FuzzDecl(kind="Mat", name="U", rows="n0", cols="n0",
                        io="Out", annotations=["UpTri", "NS"],
                        overwrites="S")
        assert decl.render() == "Mat U(n0, n0) <Out, UpTri, NS, ow(S)>;"
        assert FuzzDecl(kind="Sca", name="t").render() == "Sca t <In>;"
        assert FuzzDecl(kind="Vec", name="x",
                        rows="n1").render() == "Vec x(n1) <In>;"


class TestGeneratorDeterminism:
    def test_same_seed_same_case(self):
        for seed in range(20):
            first = sample_case(seed)
            second = sample_case(seed)
            assert first.to_json() == second.to_json()

    def test_sampled_programs_parse(self):
        for seed in range(40):
            case = sample_case(seed)
            program = case.program.parse()   # must not raise
            assert program.outputs(), case.program.source()

    def test_seeds_cover_the_grammar(self):
        # across a modest seed range the sampler must exercise HLACs,
        # loops, structured operands, and scalar outputs
        sources = [sample_case(seed).program.source()
                   for seed in range(120)]
        blob = "\n".join(sources)
        assert "inv(" in blob
        assert "for (" in blob
        assert "UpSym" in blob and "LoTri" in blob
        assert "Sca" in blob
        assert "ow(" in blob
        assert "sqrt(" in blob


class TestInputs:
    def test_inputs_respect_declared_properties(self):
        source = """
        Mat S(n, n) <In, UpSym, PD>;
        Mat L(n, n) <In, LoTri, NS, UnitDiag>;
        Mat U(n, n) <In, UpTri, NS>;
        Mat G(n, n) <In>;
        Vec x(n) <In>;
        Sca t <In>;
        Mat C(n, n) <Out>;
        C = S + L + U + G + (t * (x * x'));
        """
        from repro.la import parse_program
        program = parse_program(source, {"n": 5}, name="inputs")
        inputs = make_inputs(program, seed=11)
        spd = inputs["S"]
        assert np.allclose(spd, spd.T)
        assert np.all(np.linalg.eigvalsh(spd) > 0)
        lower = inputs["L"]
        assert np.allclose(np.triu(lower, 1), 0)
        assert np.allclose(np.diag(lower), 1.0)    # UnitDiag
        upper = inputs["U"]
        assert np.allclose(np.tril(upper, -1), 0)
        assert np.all(np.abs(np.diag(upper)) >= 1.0)   # NS: dominant diag
        assert inputs["x"].shape == (5, 1)
        assert 0.5 <= abs(float(inputs["t"].item())) <= 1.5

    def test_inputs_are_deterministic(self):
        case = sample_case(5)
        program = case.program.parse()
        first = make_inputs(program, seed=3)
        second = make_inputs(program, seed=3)
        assert sorted(first) == sorted(second)
        for name in first:
            np.testing.assert_array_equal(first[name], second[name])


class TestMismatchMask:
    def test_nan_agrees_with_nan_only(self):
        a = np.array([[np.nan, 1.0]])
        b = np.array([[np.nan, 1.0]])
        assert not _mismatch_mask(a, b, 1e-9).any()
        c = np.array([[0.0, 1.0]])
        assert _mismatch_mask(a, c, 1e-9).any()

    def test_relative_tolerance_scales_with_magnitude(self):
        a = np.array([[1e12]])
        b = np.array([[1e12 + 10.0]])    # 1e-11 relative
        assert not _mismatch_mask(a, b, 1e-9).any()
        assert _mismatch_mask(a, b, 1e-13).any()

    def test_small_absolute_differences_fail(self):
        a = np.array([[0.0]])
        b = np.array([[1e-6]])
        assert _mismatch_mask(a, b, 1e-9).any()


class TestOracle:
    def test_simple_case_is_ok(self):
        case = _case(["A1 = (A0 + A0);"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 4})
        result = run_case(case)
        assert result.status == "ok"
        assert result.reference_checked

    def test_syntax_error_is_a_reject(self):
        case = _case(["A1 = = A0;"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 3})
        result = run_case(case)
        assert result.status == "reject"
        assert result.stage == "parse"

    def test_invalid_vector_width_is_a_reject(self):
        case = _case(["A1 = A0;"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 3}, options=Options(vector_width=5))
        result = run_case(case)
        assert result.status == "reject"
        assert result.error_type == "ConfigurationError"

    def test_unsupported_hlac_is_a_reject(self):
        case = _case(["A1 = inv(A0);"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In", ["NS"]),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 3})
        result = run_case(case)
        assert result.status == "reject"
        assert result.error_type == "UnsupportedHLACError"

    def test_reference_catches_wrong_semantics(self):
        # reference evaluation of a potrf program must agree with the
        # generated kernel on the stored triangle and the zero remainder
        case = _case(["U' * U = S;"],
                     [FuzzDecl("Mat", "S", "n", "n", "In", ["UpSym", "PD"]),
                      FuzzDecl("Mat", "U", "n", "n", "Out",
                               ["UpTri", "NS"])],
                     {"n": 5})
        result = run_case(case)
        assert result.status == "ok"
        assert result.reference_checked

    def test_reference_models_ow_aliasing(self):
        # U overwrites S: the strict lower triangle of the shared buffer
        # keeps S's values after the factorization
        case = _case(["U' * U = S;"],
                     [FuzzDecl("Mat", "S", "n", "n", "In", ["UpSym", "PD"]),
                      FuzzDecl("Mat", "U", "n", "n", "Out",
                               ["UpTri", "NS"], overwrites="S")],
                     {"n": 4})
        result = run_case(case)
        assert result.status == "ok", result.describe()

        program = case.program.parse()
        inputs = make_inputs(program, case.input_seed)
        expected = reference_outputs(program, inputs)
        assert np.allclose(np.tril(expected["S"], -1),
                           np.tril(inputs["S"], -1))

    def test_sqrt_of_negative_agrees_as_nan_everywhere(self):
        case = _case(["s1 = sqrt(s0);"],
                     [FuzzDecl("Sca", "s0", io="In"),
                      FuzzDecl("Sca", "s1", io="Out")],
                     {"n": 1}, input_seed=0)
        # find a seed whose scalar draw is negative
        program = case.program.parse()
        for seed in range(20):
            if float(make_inputs(program, seed)["s0"].item()) < 0:
                case.input_seed = seed
                break
        else:
            pytest.fail("no negative scalar draw in 20 seeds")
        result = run_case(case)
        assert result.status == "ok", result.describe()


class TestShrinker:
    def test_shrinks_to_the_failing_core(self, monkeypatch):
        # deterministic fake oracle: the case "fails" iff statement
        # "A1 = (A0 + A0);" survives and n0 >= 3
        import repro.fuzz.shrink as shrink_mod
        from repro.fuzz.oracle import CaseResult

        def fake_oracle(case, **kwargs):
            failing = ("A1 = (A0 + A0);" in case.program.statements
                       and case.program.dims.get("n0", 0) >= 3)
            if failing:
                return CaseResult(status="crash", stage="generate",
                                  error_type="LoweringError", error="boom")
            return CaseResult(status="ok")

        monkeypatch.setattr(shrink_mod, "run_case", fake_oracle)
        case = _case(
            ["A1 = (A0 + A0);", "A2 = (A0 * A0);", "s0 = 2;"],
            [FuzzDecl("Mat", "A0", "n0", "n0", "In"),
             FuzzDecl("Mat", "A1", "n0", "n0", "Out"),
             FuzzDecl("Mat", "A2", "n0", "n0", "Out"),
             FuzzDecl("Mat", "A3", "n1", "n1", "In", ["LoTri", "NS"]),
             FuzzDecl("Sca", "s0", io="Out")],
            {"n0": 8, "n1": 5},
            options=Options(vectorize=False, block_size=7))
        outcome = shrink_case(case, fake_oracle(case))
        shrunk = outcome.case
        assert shrunk.program.statements == ["A1 = (A0 + A0);"]
        assert shrunk.program.dims == {"n0": 3}
        assert [d.name for d in shrunk.program.decls] == ["A0", "A1"]
        # options reset to defaults because the failure does not need them
        assert shrunk.options == Options()

    def test_passing_case_is_left_alone(self):
        case = _case(["A1 = A0;"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 2})
        outcome = shrink_case(case)
        assert outcome.attempts == 0
        assert outcome.case is case


class TestCorpus:
    def test_save_load_replay(self, tmp_path):
        case = _case(["A1 = (A0 * A0);"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 3})
        result = run_case(case)
        assert result.status == "ok"
        path = save_entry(case, result, note="round-trip test",
                          directory=str(tmp_path))
        entry = load_entry(path)
        assert entry.note == "round-trip test"
        assert entry.case.to_json() == case.to_json()
        entries = load_corpus(str(tmp_path))
        assert [e.entry_id for e in entries] == [entry.entry_id]
        replay = replay_entry(entry)
        assert replay.status == "ok"

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(FuzzError):
            load_entry(str(path))


class TestCli:
    def test_run_small_budget_exits_zero(self, capsys):
        # seeds 0..4 are known-clean (and must stay clean)
        code = fuzz_main(["run", "--budget", "5", "--seed", "0",
                          "--backends", "interpreter,numpy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "5 cases:" in out

    def test_replay_cli_on_saved_entry(self, tmp_path, capsys):
        case = _case(["A1 = A0;"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 2})
        save_entry(case, run_case(case), note="cli", directory=str(tmp_path))
        code = fuzz_main(["replay", "--corpus", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "replay ok" in out

    def test_corpus_listing(self, tmp_path, capsys):
        code = fuzz_main(["corpus", "--corpus", str(tmp_path / "none")])
        assert code == 0
        assert "no corpus entries" in capsys.readouterr().out


class TestCrosscheckSeeds:
    def test_crosscheck_sweeps_multiple_seeds(self, capsys):
        code = backend_main(["crosscheck", "gemm:3", "--seeds", "3",
                             "--backends", "interpreter,numpy"])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 input seed(s)" in out

    def test_crosscheck_rejects_bad_seed_count(self, capsys):
        code = backend_main(["crosscheck", "gemm:3", "--seeds", "0"])
        assert code == 2


class TestSanitizeIdentifier:
    def test_identity_for_valid_names(self):
        assert sanitize_identifier("potrf_4_kernel") == "potrf_4_kernel"

    def test_dashes_and_leading_digits(self):
        assert sanitize_identifier("potrf-4_kernel") == "potrf_4_kernel"
        assert sanitize_identifier("2stage") == "k_2stage"
        assert sanitize_identifier("") == "k_"

    def test_python_and_c_keywords_are_prefixed(self):
        # 'for' passes isidentifier() but 'def for(...)' / 'void for(...)'
        # do not compile
        assert sanitize_identifier("for") == "k_for"
        assert sanitize_identifier("lambda") == "k_lambda"
        assert sanitize_identifier("double") == "k_double"
        assert sanitize_identifier("restrict") == "k_restrict"

    def test_keyword_function_name_still_compiles(self):
        case = _case(["A1 = A0;"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 2}, options=Options(function_name="while"))
        result = run_case(case)
        assert result.status == "ok", result.describe()

    def test_hyphenated_program_name_compiles(self):
        # the original fuzzer finding: a program named with a dash used
        # to emit a kernel the NumPy backend could not even compile
        case = _case(["A1 = (A0 + A0);"],
                     [FuzzDecl("Mat", "A0", "n", "n", "In"),
                      FuzzDecl("Mat", "A1", "n", "n", "Out")],
                     {"n": 3})
        case.program.name = "dash-name 2.0"
        result = run_case(case)
        assert result.status == "ok", result.describe()
