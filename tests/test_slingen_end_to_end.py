"""End-to-end tests of the SLinGen generator on the paper's computations."""

import numpy as np
import pytest

from repro import Options, SLinGen
from repro.applications import kf_case, make_case
from repro.backend import compiler_available
from repro.slingen import apply_rule_r0, apply_rule_r1
from repro.la import parse_program
from repro.ir import Assign, Div, Ref


def _check(case, generated, seed=11, atol=1e-7):
    inputs = case.make_inputs(seed)
    outputs = generated.run(inputs)
    expected = case.reference_outputs(inputs)
    for key, mode in case.checked_outputs.items():
        got, want = outputs[key], expected[key]
        if mode == "lower":
            got, want = np.tril(got), np.tril(want)
        elif mode == "upper":
            got, want = np.triu(got), np.triu(want)
        np.testing.assert_allclose(got, want, atol=atol,
                                   err_msg=f"{case.name}: output {key}")


ALL_CASES = [("potrf", 11), ("trtri", 10), ("trsyl", 7), ("trlya", 7),
             ("gpr", 9), ("l1a", 12), ("kf", 7)]


class TestGeneratedCodeCorrectness:
    @pytest.mark.parametrize("name,n", ALL_CASES)
    @pytest.mark.parametrize("vectorize", [True, False])
    def test_all_cases_interpreted(self, name, n, vectorize):
        case = make_case(name, n)
        generated = SLinGen(Options(vectorize=vectorize, autotune=False)) \
            .generate(case.program, nominal_flops=case.nominal_flops)
        _check(case, generated)

    @pytest.mark.parametrize("name,n", [("potrf", 9), ("kf", 6)])
    def test_autotuned_code_is_correct(self, name, n):
        case = make_case(name, n)
        generated = SLinGen(Options(autotune=True, max_variants=6)) \
            .generate(case.program, nominal_flops=case.nominal_flops)
        assert len(generated.candidates) > 1
        _check(case, generated)

    def test_kf_rectangular_observation(self):
        case = kf_case(10, 4)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        _check(case, generated)

    def test_vector_width_two(self):
        case = make_case("potrf", 9)
        generated = SLinGen(Options(vector_width=2, autotune=False)) \
            .generate(case.program)
        _check(case, generated)

    def test_multiple_seeds(self):
        case = make_case("gpr", 8)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        for seed in range(3):
            _check(case, generated, seed=seed)


class TestGeneratedArtifacts:
    def test_summary_and_candidates(self):
        case = make_case("potrf", 12)
        generated = SLinGen(Options(autotune=True, max_variants=5)) \
            .generate(case.program, nominal_flops=case.nominal_flops)
        summary = generated.summary()
        assert summary["flops_per_cycle"] > 0
        assert summary["candidates_evaluated"] >= 2
        assert generated.database_stats()["signatures"] >= 1 \
            if callable(generated.database_stats) \
            else generated.database_stats["signatures"] >= 1

    def test_emitted_c_contains_intrinsics_when_vectorized(self):
        case = make_case("potrf", 8)
        generated = SLinGen(Options(vectorize=True, autotune=False)) \
            .generate(case.program)
        assert "_mm256_" in generated.c_code
        assert "void potrf_8_kernel" in generated.c_code

    def test_emitted_scalar_c_has_no_intrinsics(self):
        case = make_case("potrf", 8)
        generated = SLinGen(Options(vectorize=False, autotune=False)) \
            .generate(case.program)
        assert "_mm256_" not in generated.c_code
        assert "immintrin" not in generated.c_code

    def test_basic_program_has_no_hlacs(self):
        case = make_case("kf", 6)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        assert generated.basic_program.is_basic()

    def test_load_store_analysis_reports_forwarding(self):
        case = make_case("potrf", 12)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        assert generated.pass_report.load_store.total >= 0


@pytest.mark.skipif(not compiler_available(),
                    reason="no C compiler on this system")
class TestCompiledC:
    @pytest.mark.parametrize("name,n,vectorize", [
        ("potrf", 10, True), ("potrf", 10, False), ("kf", 6, True),
        ("l1a", 9, True), ("trtri", 8, True),
    ])
    def test_compiled_kernel_matches_reference(self, name, n, vectorize):
        case = make_case(name, n)
        generated = SLinGen(Options(vectorize=vectorize, autotune=False)) \
            .generate(case.program)
        inputs = case.make_inputs(3)
        outputs = generated.compile_and_run(inputs)
        expected = case.reference_outputs(inputs)
        for key, mode in case.checked_outputs.items():
            got, want = outputs[key], expected[key]
            if mode == "lower":
                got, want = np.tril(got), np.tril(want)
            elif mode == "upper":
                got, want = np.triu(got), np.triu(want)
            np.testing.assert_allclose(got, want, atol=1e-7)

    def test_interpreter_and_compiled_c_agree(self):
        case = make_case("gpr", 8)
        generated = SLinGen(Options(autotune=False)).generate(case.program)
        inputs = case.make_inputs(9)
        interpreted = generated.run(inputs)
        compiled = generated.compile_and_run(inputs)
        for key in case.checked_outputs:
            np.testing.assert_allclose(interpreted[key], compiled[key],
                                       atol=1e-9)


class TestRewriteRules:
    def test_rule_r0_packs_adjacent_divisions(self):
        source = """
        Mat S(1, 2) <In>;
        Sca lam <In>;
        Mat X(1, 2) <Out>;
        Sca x0 <Out>;
        Sca x1 <Out>;
        x0 = 1.0 / lam;
        x1 = 1.0 / lam;
        X = S / lam;
        """
        # Build the Table-2 scenario directly on a program: two scalar
        # divisions with adjacent destinations.
        program = parse_program("""
        Mat B(1, 4) <In>;
        Sca lam <In>;
        Mat X(1, 4) <Out>;
        """, {})
        B = program.operand("B")
        lam = program.operand("lam")
        X = program.operand("X")
        for j in range(4):
            program.statements.append(
                Assign(X.full_view().element(0, j),
                       Div(Ref(B.full_view().element(0, j)),
                           Ref(lam.full_view()))))
        report = apply_rule_r0(program)
        assert report.r0_applications == 1
        assert len(program.statements) == 1
        assert program.statements[0].lhs.shape == (1, 4)

    def test_rule_r1_introduces_reciprocal(self):
        program = parse_program("""
        Vec b(6) <In>;
        Sca lam <In>;
        Vec x(6) <Out>;
        x = b / lam;
        """, {})
        report = apply_rule_r1(program)
        assert report.r1_applications == 1
        assert len(program.statements) == 2
        # the packed form still computes the right thing end to end
        generated = SLinGen(Options(autotune=False)).generate(program)
        rng = np.random.default_rng(0)
        b = rng.standard_normal((6, 1))
        out = generated.run({"b": b, "lam": np.array([[4.0]])})
        np.testing.assert_allclose(out["x"], b / 4.0, atol=1e-12)
