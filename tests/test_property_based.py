"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications import make_case
from repro.cir import Affine, run_function
from repro.cir.passes import PassOptions, run_pipeline
from repro.ir import IOType, Matrix, Mul, Program, Assign, Transpose, ref
from repro.ir.properties import (Properties, Structure, add_structure,
                                 mul_structure, transpose_structure)
from repro.lgen import LoweringOptions, lower_program
from repro.slingen import Options, SLinGen

structures = st.sampled_from(list(Structure))


class TestAffineProperties:
    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-10, 10),
           st.integers(-10, 10))
    def test_affine_evaluation_is_linear(self, ci, cj, i, j):
        expr = Affine.var("i", ci) + Affine.var("j", cj)
        assert expr.evaluate({"i": i, "j": j}) == ci * i + cj * j

    @given(st.integers(-20, 20), st.integers(-20, 20), st.integers(-5, 5))
    def test_scaling_distributes(self, const, coef, factor):
        expr = Affine.var("i", coef) + const
        scaled = expr * factor
        assert scaled.evaluate({"i": 3}) == factor * expr.evaluate({"i": 3})

    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_substitution_matches_evaluation(self, a, b):
        expr = Affine.var("i") * 2 + Affine.var("j") * 3 + 1
        assert expr.substitute({"i": a, "j": b}).value() == \
            expr.evaluate({"i": a, "j": b})


class TestStructureAlgebraProperties:
    @given(structures, structures)
    def test_add_is_commutative(self, a, b):
        assert add_structure(a, b) is add_structure(b, a)

    @given(structures)
    def test_zero_is_additive_identity(self, a):
        assert add_structure(Structure.ZERO, a) is a

    @given(structures)
    def test_identity_is_multiplicative_identity(self, a):
        assert mul_structure(Structure.IDENTITY, a) is a
        assert mul_structure(a, Structure.IDENTITY) is a

    @given(structures)
    def test_transpose_is_involutive(self, a):
        assert transpose_structure(transpose_structure(a)) is a

    @given(structures, structures)
    def test_transpose_of_product_rule(self, a, b):
        # (A*B)^T has the structure of B^T * A^T
        lhs = transpose_structure(mul_structure(a, b))
        rhs = mul_structure(transpose_structure(b), transpose_structure(a))
        assert lhs is rhs


class TestLoweringInvariants:
    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 8), seed=st.integers(0, 10_000),
           width=st.sampled_from([1, 2, 4]))
    def test_pass_pipeline_preserves_results(self, n, seed, width):
        """Invariant: Stage-3 passes never change computed values."""
        prog = Program("prop")
        A = prog.declare(Matrix("A", n, n, IOType.IN))
        B = prog.declare(Matrix("B", n, n, IOType.IN))
        C = prog.declare(Matrix("C", n, n, IOType.OUT))
        prog.add(Assign(C.full_view(),
                        Mul(ref(A), Transpose(ref(B))) + ref(A)))
        prog.validate()
        rng = np.random.default_rng(seed)
        inputs = {"A": rng.standard_normal((n, n)),
                  "B": rng.standard_normal((n, n))}
        function = lower_program(prog, LoweringOptions(vector_width=width))
        before = run_function(function, inputs)
        run_pipeline(function, PassOptions())
        after = run_function(function, inputs)
        np.testing.assert_allclose(before["C"], after["C"], atol=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 10), seed=st.integers(0, 10_000))
    def test_cholesky_factor_reconstructs_input(self, n, seed):
        """Invariant: U^T U = S for the generated Cholesky at any size."""
        case = make_case("potrf", n)
        generated = SLinGen(Options(autotune=False, annotate_code=False)) \
            .generate(case.program)
        inputs = case.make_inputs(seed)
        U = np.triu(generated.run(inputs)["U"])
        np.testing.assert_allclose(U.T @ U, inputs["S"], atol=1e-7)

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(2, 9), seed=st.integers(0, 10_000))
    def test_trtri_inverse_property(self, n, seed):
        """Invariant: L * X = I for the generated triangular inverse."""
        case = make_case("trtri", n)
        generated = SLinGen(Options(autotune=False, annotate_code=False)) \
            .generate(case.program)
        inputs = case.make_inputs(seed)
        X = np.tril(generated.run(inputs)["X"])
        np.testing.assert_allclose(inputs["L"] @ X, np.eye(n), atol=1e-7)

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(2, 8), seed=st.integers(0, 10_000))
    def test_lyapunov_residual_and_symmetry(self, n, seed):
        """Invariant: the trlya solution satisfies its equation and is
        symmetric."""
        case = make_case("trlya", n)
        generated = SLinGen(Options(autotune=False, annotate_code=False)) \
            .generate(case.program)
        inputs = case.make_inputs(seed)
        X = generated.run(inputs)["X"]
        L, S = inputs["L"], inputs["S"]
        np.testing.assert_allclose(L @ X + X @ L.T, S, atol=1e-6)
        np.testing.assert_allclose(X, X.T, atol=1e-8)
