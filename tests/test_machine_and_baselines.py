"""Tests for the machine model (instruction mix, roofline) and baselines."""

import numpy as np
import pytest

from repro.applications import make_case
from repro.backend import unparse_function
from repro.baselines import baseline_names, evaluate_baseline
from repro.bench import hlac_sizes, run_series
from repro.machine import (SANDY_BRIDGE, analyze_function, analyze_mix,
                           instruction_mix, InstructionMix)
from repro.slingen import Options, SLinGen
from repro.cir import (Affine, Assign, Buffer, FloatConst, For, Function,
                       ScalarVar, Store, VBinOp, VecVar, VLoad, VStore)


class TestInstructionMix:
    def test_loop_weighting_is_exact(self):
        a = Buffer("a", 1, 16, "in")
        out = Buffer("out", 1, 16, "out")
        v = VecVar("v")
        body = [For("i", 0, 16, 4,
                    [Assign(v, VBinOp("mul", VLoad(a, Affine.var("i")),
                                      VLoad(a, Affine.var("i")))),
                     VStore(out, Affine.var("i"), v)])]
        func = Function("k", [a, out], [], body, vector_width=4)
        mix = instruction_mix(func)
        assert mix.vector_mul == 4
        assert mix.vector_loads == 8
        assert mix.vector_stores == 4
        assert mix.flops == 4 * 4

    def test_mix_addition_and_scaling(self):
        mix = InstructionMix(vector_add=2, scalar_div=1, vector_width=4)
        double = mix + mix
        assert double.vector_add == 4
        assert mix.scaled(3).scalar_div == 3

    def test_peak_performance_of_machine(self):
        assert SANDY_BRIDGE.peak_flops_per_cycle == 8


class TestRoofline:
    def test_division_bound_at_small_sizes(self):
        case = make_case("potrf", 4)
        generated = SLinGen(Options(autotune=False)).generate(
            case.program, nominal_flops=case.nominal_flops)
        assert generated.performance.bottleneck == "divs/sqrt"

    def test_not_division_bound_at_larger_sizes(self):
        case = make_case("potrf", 64)
        generated = SLinGen(Options(autotune=False)).generate(
            case.program, nominal_flops=case.nominal_flops)
        assert generated.performance.bottleneck != "divs/sqrt"
        assert 0.5 < generated.performance.flops_per_cycle <= 8.0

    def test_shuffle_blend_rate_and_limits(self):
        case = make_case("trtri", 20)
        generated = SLinGen(Options(autotune=False)).generate(
            case.program, nominal_flops=case.nominal_flops)
        perf = generated.performance
        assert 0.0 <= perf.shuffle_blend_issue_rate < 1.0
        assert 0.0 < perf.perf_limit_shuffles <= 8.0
        assert 0.0 < perf.perf_limit_blends <= 8.0

    def test_call_overhead_increases_cycles(self):
        mix = InstructionMix(vector_mul=100, vector_add=100, vector_width=4)
        without = analyze_mix(mix, nominal_flops=800.0, call_count=0)
        with_calls = analyze_mix(mix, nominal_flops=800.0, call_count=10)
        assert with_calls.cycles > without.cycles


class TestBaselines:
    @pytest.mark.parametrize("case_name", ["potrf", "trsyl", "trtri", "kf",
                                           "l1a", "gpr"])
    def test_all_baselines_evaluate(self, case_name):
        case = make_case(case_name, 24)
        for name in baseline_names(case.name):
            result = evaluate_baseline(name, case)
            assert result.cycles > 0
            assert 0 < result.flops_per_cycle < 8.0

    def test_mkl_improves_with_size(self):
        small = evaluate_baseline("mkl", make_case("potrf", 8))
        large = evaluate_baseline("mkl", make_case("potrf", 96))
        assert large.flops_per_cycle > small.flops_per_cycle

    def test_cl1ck_small_blocks_pay_call_overhead(self):
        case = make_case("potrf", 64)
        nb4 = evaluate_baseline("cl1ck-mkl-nb4", case)
        nbn = evaluate_baseline("cl1ck-mkl-nbn", case)
        assert nb4.calls > nbn.calls

    def test_scalar_compiler_baselines_below_vector_peak(self):
        case = make_case("potrf", 64)
        assert evaluate_baseline("icc", case).flops_per_cycle < 1.2
        assert evaluate_baseline("clang-polly", case).flops_per_cycle < 1.5


class TestSeriesHarness:
    def test_series_shape_matches_paper(self):
        series = run_series("potrf", [8, 24],
                            options=Options(autotune=False,
                                            annotate_code=False),
                            validate=True)
        assert [p.size for p in series.points] == [8, 24]
        for point in series.points:
            assert point.correct is True
            assert point.performance["slingen"] > point.performance["icc"]
        table = series.format_table()
        assert "slingen" in table and "mkl" in table

    def test_speedup_helper(self):
        series = run_series("l1a", [8],
                            options=Options(autotune=False,
                                            annotate_code=False))
        assert all(s > 0 for s in series.speedup("mkl"))

    def test_default_size_grids(self):
        assert all(size <= 124 for size in hlac_sizes())
        assert len(hlac_sizes()) >= 3
