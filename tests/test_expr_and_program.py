"""Unit tests for the mathematical expression IR and Program container."""

import pytest

from repro.errors import DimensionError, LASemanticError
from repro.ir import (Add, Assign, Const, Div, Equation, ForLoop, IOType,
                      Inverse, Matrix, Mul, Neg, Program, Ref, Sqrt,
                      Structure, Sub, Transpose, Vector, flatten_add,
                      flatten_mul, ref)
from repro.ir.properties import Properties


@pytest.fixture
def operands():
    A = Matrix("A", 4, 6)
    B = Matrix("B", 6, 5)
    C = Matrix("C", 4, 5, IOType.OUT)
    x = Vector("x", 6)
    return A, B, C, x


class TestExpressions:
    def test_matmul_shape(self, operands):
        A, B, C, x = operands
        product = Mul(ref(A), ref(B))
        assert product.shape == (4, 5)

    def test_matmul_shape_mismatch(self, operands):
        A, B, C, x = operands
        with pytest.raises(DimensionError):
            Mul(ref(B), ref(A))

    def test_add_shape_mismatch(self, operands):
        A, B, _, _ = operands
        with pytest.raises(DimensionError):
            Add(ref(A), ref(B))

    def test_transpose_shape(self, operands):
        A, *_ = operands
        assert Transpose(ref(A)).shape == (6, 4)

    def test_scalar_scaling(self, operands):
        A, *_ = operands
        scaled = Mul(Const(2.0), ref(A))
        assert scaled.shape == A.shape
        assert scaled.is_scaling

    def test_inner_product_is_scalar(self, operands):
        *_, x = operands
        dot = Mul(Transpose(ref(x)), ref(x))
        assert dot.is_scalar

    def test_sqrt_requires_scalar(self, operands):
        A, *_ = operands
        with pytest.raises(DimensionError):
            Sqrt(ref(A))

    def test_division_requires_scalar_divisor(self, operands):
        A, *_ = operands
        with pytest.raises(DimensionError):
            Div(ref(A), ref(A))

    def test_inverse_requires_square(self, operands):
        A, *_ = operands
        with pytest.raises(DimensionError):
            Inverse(ref(A))

    def test_structure_propagation_triangular_product(self):
        L1 = Matrix("L1", 4, 4, properties=Properties.lower_triangular())
        L2 = Matrix("L2", 4, 4, properties=Properties.lower_triangular())
        assert Mul(ref(L1), ref(L2)).structure is Structure.LOWER_TRIANGULAR
        assert Transpose(ref(L1)).structure is Structure.UPPER_TRIANGULAR

    def test_flatten_add_signs(self, operands):
        A, *_ = operands
        A2 = Matrix("A2", 4, 6)
        A3 = Matrix("A3", 4, 6)
        expr = Sub(Add(ref(A), ref(A2)), Neg(ref(A3)))
        terms = flatten_add(expr)
        assert [sign for sign, _ in terms] == [1, 1, 1]

    def test_flatten_mul_preserves_order(self, operands):
        A, B, *_ = operands
        D = Matrix("D", 5, 3)
        factors = flatten_mul(Mul(Mul(ref(A), ref(B)), ref(D)))
        assert [f.view.operand.name for f in factors] == ["A", "B", "D"]

    def test_walk_and_operands(self, operands):
        A, B, C, _ = operands
        expr = Add(Mul(ref(A), ref(B)), ref(C))
        assert {op.name for op in expr.operands()} == {"A", "B", "C"}
        assert not expr.contains_inverse()
        assert Inverse(ref(Matrix("S", 3, 3))).contains_inverse()


class TestProgram:
    def test_duplicate_declaration_rejected(self):
        prog = Program("p")
        prog.declare(Matrix("A", 2, 2))
        with pytest.raises(LASemanticError):
            prog.declare(Matrix("A", 2, 2))

    def test_overwrite_requires_declared_target_and_shape(self):
        prog = Program("p")
        prog.declare(Matrix("S", 3, 3, IOType.OUT))
        with pytest.raises(LASemanticError):
            prog.declare(Matrix("U", 2, 2, IOType.OUT, overwrites="S"))
        with pytest.raises(LASemanticError):
            prog.declare(Matrix("V", 3, 3, IOType.OUT, overwrites="missing"))

    def test_statement_with_undeclared_operand_rejected(self):
        prog = Program("p")
        A = Matrix("A", 2, 2, IOType.OUT)
        with pytest.raises(LASemanticError):
            prog.add(Assign(A.full_view(), ref(Matrix("B", 2, 2))))

    def test_write_to_input_rejected_by_validate(self):
        prog = Program("p")
        A = prog.declare(Matrix("A", 2, 2, IOType.IN))
        B = prog.declare(Matrix("B", 2, 2, IOType.IN))
        prog.statements.append(Assign(A.full_view(), ref(B)))
        with pytest.raises(LASemanticError):
            prog.validate()

    def test_read_before_write_rejected(self):
        prog = Program("p")
        A = prog.declare(Matrix("A", 2, 2, IOType.OUT))
        B = prog.declare(Matrix("B", 2, 2, IOType.OUT))
        prog.add(Assign(B.full_view(), ref(A)))
        with pytest.raises(LASemanticError):
            prog.validate()

    def test_storage_groups_follow_ow_chain(self):
        prog = Program("p")
        prog.declare(Matrix("S", 3, 3, IOType.OUT))
        prog.declare(Matrix("U", 3, 3, IOType.OUT, overwrites="S"))
        groups = prog.storage_groups()
        assert groups["U"] == "S"
        assert groups["S"] == "S"

    def test_for_loop_unrolling(self):
        prog = Program("p")
        A = prog.declare(Matrix("A", 2, 2, IOType.IN))
        B = prog.declare(Matrix("B", 2, 2, IOType.OUT))
        body = [Assign(B.full_view(), ref(A))]
        prog.statements.append(ForLoop("i", 0, 3, 1, body))
        assert len(prog.unrolled_statements()) == 3
        assert prog.is_basic()

    def test_hlac_detection(self):
        prog = Program("p")
        S = prog.declare(Matrix("S", 3, 3, IOType.IN,
                                properties=Properties.symmetric()))
        U = prog.declare(Matrix("U", 3, 3, IOType.OUT,
                                properties=Properties.upper_triangular()))
        prog.add(Equation(Mul(Transpose(ref(U)), ref(U)), ref(S)))
        assert not prog.is_basic()
        assert len(prog.hlacs()) == 1
