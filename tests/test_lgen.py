"""Tests for the LGen-style sBLAC compiler: normalization and lowering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cir import run_function, run_pipeline, PassOptions
from repro.ir import (Assign, Const, Div, IOType, Matrix, Mul, Program, Ref,
                      Sub, Transpose, Vector, ref)
from repro.lgen import (LoweringOptions, MatMulOp, Normalizer, NU_BLACS,
                        ScalarAssignOp, ScaleCopyOp, candidate_variants,
                        lower_program, push_down_transposes)
from repro.lgen.normalize import chain_order


def _program_with(statement_builder, name="p"):
    """Helper: build a tiny program via a callback receiving the program."""
    program = Program(name)
    statement_builder(program)
    program.validate()
    return program


class TestNormalization:
    def test_push_down_transposes_product(self):
        A = Matrix("A", 3, 4)
        B = Matrix("B", 4, 5)
        expr = Transpose(Mul(ref(A), ref(B)))
        pushed = push_down_transposes(expr)
        assert isinstance(pushed, Mul)
        assert isinstance(pushed.left, Transpose)
        assert pushed.left.child.view.operand.name == "B"

    def test_double_transpose_cancels(self):
        A = Matrix("A", 3, 4)
        assert push_down_transposes(Transpose(Transpose(ref(A)))) == ref(A)

    def test_chain_order_prefers_cheap_association(self):
        # (10x1) * (1x10) * (10x1): right-to-left association is much cheaper.
        steps = chain_order([10, 1, 10, 1])
        assert steps[0] == (1, 2)

    def test_in_place_accumulation_detected(self):
        n = 4
        prog = Program("p")
        A = prog.declare(Matrix("A", n, n, IOType.IN))
        B = prog.declare(Matrix("B", n, n, IOType.IN))
        C = prog.declare(Matrix("C", n, n, IOType.INOUT))
        stmt = Assign(C.full_view(), Sub(ref(C), Mul(ref(A), ref(B))))
        ops = Normalizer().normalize(stmt)
        assert len(ops) == 1
        assert isinstance(ops[0], MatMulOp)
        assert ops[0].accumulate == -1

    def test_output_in_product_forces_temporary(self):
        n = 4
        prog = Program("p")
        L = prog.declare(Matrix("L", n, n, IOType.IN))
        U = prog.declare(Matrix("U", n, n, IOType.IN))
        x = prog.declare(Vector("x", n, IOType.IN))
        y = prog.declare(Vector("y", n, IOType.INOUT))
        stmt = Assign(y.full_view(),
                      Mul(ref(L), ref(x)) + Mul(ref(U), ref(y)))
        ops = Normalizer().normalize(stmt)
        # the result must be staged through a temporary and copied back
        assert isinstance(ops[-1], ScaleCopyOp)
        assert ops[-1].dest.operand is y

    def test_three_factor_chain_introduces_temporary(self):
        n = 4
        prog = Program("p")
        F = prog.declare(Matrix("F", n, n, IOType.IN))
        P = prog.declare(Matrix("P", n, n, IOType.IN))
        Y = prog.declare(Matrix("Y", n, n, IOType.OUT))
        stmt = Assign(Y.full_view(),
                      Mul(Mul(ref(F), ref(P)), Transpose(ref(F))))
        normalizer = Normalizer()
        ops = normalizer.normalize(stmt)
        matmuls = [op for op in ops if isinstance(op, MatMulOp)]
        assert len(matmuls) == 2
        assert len(normalizer.temps.operands) == 1

    def test_scalar_statement_goes_to_scalar_op(self):
        prog = Program("p")
        a = prog.declare(Matrix("a", 1, 1, IOType.IN))
        b = prog.declare(Matrix("b", 1, 1, IOType.OUT))
        stmt = Assign(b.full_view(), Div(Const(1.0), ref(a)))
        ops = Normalizer().normalize(stmt)
        assert len(ops) == 1 and isinstance(ops[0], ScalarAssignOp)

    def test_division_becomes_reciprocal_coefficient(self):
        n = 4
        prog = Program("p")
        s = prog.declare(Matrix("s", 1, 1, IOType.IN))
        x = prog.declare(Vector("x", n, IOType.IN))
        y = prog.declare(Vector("y", n, IOType.OUT))
        stmt = Assign(y.full_view(), Div(ref(x), ref(s)))
        ops = Normalizer().normalize(stmt)
        assert isinstance(ops[0], ScaleCopyOp)
        assert ops[0].alpha.factors[0][1] is True  # reciprocal flag


class TestNuBlacs:
    def test_catalogue_has_18_entries(self):
        assert len(NU_BLACS) == 18
        assert len({blac.name for blac in NU_BLACS}) == 18

    def test_codegen_variant_labels_unique(self):
        variants = candidate_variants()
        assert len({v.label for v in variants}) == len(variants)


def _run_lowered(program, inputs, width):
    function = lower_program(program, LoweringOptions(vector_width=width))
    run_pipeline(function, PassOptions())
    return run_function(function, inputs)


class TestLoweringCorrectness:
    @pytest.mark.parametrize("width", [1, 4])
    @pytest.mark.parametrize("m,k,n", [(1, 1, 1), (2, 3, 2), (4, 4, 4),
                                       (5, 7, 3), (8, 9, 11), (6, 1, 6)])
    @pytest.mark.parametrize("trans_a,trans_b", [(False, False), (True, False),
                                                 (False, True)])
    def test_gemm_all_shapes(self, width, m, k, n, trans_a, trans_b):
        prog = Program("gemm")
        A = prog.declare(Matrix("A", (k if trans_a else m),
                                (m if trans_a else k), IOType.IN))
        B = prog.declare(Matrix("B", (n if trans_b else k),
                                (k if trans_b else n), IOType.IN))
        C = prog.declare(Matrix("C", m, n, IOType.INOUT))
        a_expr = Transpose(ref(A)) if trans_a else ref(A)
        b_expr = Transpose(ref(B)) if trans_b else ref(B)
        prog.add(Assign(C.full_view(), ref(C) + Mul(a_expr, b_expr)))
        prog.validate()

        rng = np.random.default_rng(m * 100 + k * 10 + n)
        Am = rng.standard_normal(A.shape)
        Bm = rng.standard_normal(B.shape)
        Cm = rng.standard_normal(C.shape)
        out = _run_lowered(prog, {"A": Am, "B": Bm, "C": Cm}, width)
        Ahat = Am.T if trans_a else Am
        Bhat = Bm.T if trans_b else Bm
        np.testing.assert_allclose(out["C"], Cm + Ahat @ Bhat, atol=1e-10)

    @pytest.mark.parametrize("width", [1, 4])
    def test_gemv_and_dot(self, width):
        n = 9
        prog = Program("gemv")
        A = prog.declare(Matrix("A", n, n, IOType.IN))
        x = prog.declare(Vector("x", n, IOType.IN))
        y = prog.declare(Vector("y", n, IOType.OUT))
        alpha = prog.declare(Matrix("alpha", 1, 1, IOType.OUT))
        prog.add(Assign(y.full_view(), Mul(Transpose(ref(A)), ref(x))))
        prog.add(Assign(alpha.full_view(), Mul(Transpose(ref(x)), ref(x))))
        prog.validate()
        rng = np.random.default_rng(7)
        Am, xm = rng.standard_normal((n, n)), rng.standard_normal((n, 1))
        out = _run_lowered(prog, {"A": Am, "x": xm}, width)
        np.testing.assert_allclose(out["y"], Am.T @ xm, atol=1e-10)
        np.testing.assert_allclose(out["alpha"], xm.T @ xm, atol=1e-10)

    @pytest.mark.parametrize("width", [1, 4])
    def test_transposed_copy_and_axpy(self, width):
        m, n = 6, 7
        prog = Program("copy")
        A = prog.declare(Matrix("A", m, n, IOType.IN))
        B = prog.declare(Matrix("B", n, m, IOType.OUT))
        s = prog.declare(Matrix("s", 1, 1, IOType.IN))
        x = prog.declare(Vector("x", m, IOType.IN))
        y = prog.declare(Vector("y", m, IOType.INOUT))
        prog.add(Assign(B.full_view(), Transpose(ref(A))))
        prog.add(Assign(y.full_view(), ref(y) + Mul(ref(s), ref(x))))
        prog.validate()
        rng = np.random.default_rng(11)
        Am = rng.standard_normal((m, n))
        xm, ym = rng.standard_normal((m, 1)), rng.standard_normal((m, 1))
        sm = np.array([[2.5]])
        out = _run_lowered(prog, {"A": Am, "x": xm, "y": ym, "s": sm}, width)
        np.testing.assert_allclose(out["B"], Am.T, atol=1e-12)
        np.testing.assert_allclose(out["y"], ym + 2.5 * xm, atol=1e-12)

    def test_scalar_expression_with_sqrt_and_div(self):
        prog = Program("scalars")
        a = prog.declare(Matrix("a", 1, 1, IOType.IN))
        b = prog.declare(Matrix("b", 1, 1, IOType.IN))
        c = prog.declare(Matrix("c", 1, 1, IOType.OUT))
        from repro.ir import Sqrt
        prog.add(Assign(c.full_view(),
                        Div(Sqrt(ref(a)), ref(b)) + Const(1.0)))
        prog.validate()
        out = _run_lowered(prog, {"a": np.array([[9.0]]),
                                  "b": np.array([[2.0]])}, 1)
        assert out["c"][0, 0] == pytest.approx(3.0 / 2.0 + 1.0)

    @settings(max_examples=25, deadline=None)
    @given(m=st.integers(1, 7), k=st.integers(1, 7), n=st.integers(1, 7),
           width=st.sampled_from([1, 4]), seed=st.integers(0, 1000))
    def test_property_random_gemm_plus_matrix(self, m, k, n, width, seed):
        """Property: lowering of C = A*B + D matches numpy for any shape."""
        prog = Program("prop")
        A = prog.declare(Matrix("A", m, k, IOType.IN))
        B = prog.declare(Matrix("B", k, n, IOType.IN))
        D = prog.declare(Matrix("D", m, n, IOType.IN))
        C = prog.declare(Matrix("C", m, n, IOType.OUT))
        prog.add(Assign(C.full_view(), Mul(ref(A), ref(B)) + ref(D)))
        prog.validate()
        rng = np.random.default_rng(seed)
        Am, Bm, Dm = (rng.standard_normal(s) for s in [(m, k), (k, n), (m, n)])
        out = _run_lowered(prog, {"A": Am, "B": Bm, "D": Dm}, width)
        np.testing.assert_allclose(out["C"], Am @ Bm + Dm, atol=1e-10)
