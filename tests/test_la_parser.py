"""Tests for the LA language frontend (lexer + parser)."""

import pytest

from repro.applications import GPR_SOURCE, KF_SOURCE, L1A_SOURCE
from repro.errors import LASemanticError, LASyntaxError
from repro.ir import Assign, Equation, IOType, Structure
from repro.la import parse_program, tokenize


class TestLexer:
    def test_tokenizes_declaration(self):
        tokens = tokenize("Mat A(4, 4) <In, LoTri>;")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword" and tokens[0].text == "Mat"
        assert "eof" == kinds[-1]

    def test_reports_position_of_bad_character(self):
        with pytest.raises(LASyntaxError) as excinfo:
            tokenize("Mat A(4, 4) <In>;\nA = $;")
        assert excinfo.value.line == 2

    def test_comments_are_skipped(self):
        tokens = tokenize("# a comment\nMat A(2,2) <In>; // trailing\n")
        assert all(t.text != "#" for t in tokens)


class TestParserDeclarations:
    def test_parse_fig5_fragment(self):
        source = """
        Mat H(k, n) <In>;
        Mat P(k, k) <In, UpSym, PD>;
        Mat R(k, k) <In, UpSym, PD>;
        Mat S(k, k) <Out, UpSym, PD>;
        Mat U(k, k) <Out, UpTri, NS, ow(S)>;
        Mat B(k, k) <Out>;
        S = H * H' + R;
        U' * U = S;
        U' * B = P;
        """
        program = parse_program(source, {"n": 8, "k": 6})
        assert program.operand("H").shape == (6, 8)
        assert program.operand("U").overwrites == "S"
        assert program.operand("U").properties.structure is \
            Structure.UPPER_TRIANGULAR
        assert program.operand("S").io is IOType.OUT
        kinds = [type(s) for s in program.statements]
        assert kinds == [Assign, Equation, Equation]

    def test_unbound_size_constant_rejected(self):
        with pytest.raises(LASemanticError):
            parse_program("Mat A(n, n) <In>;", {})

    def test_unknown_property_rejected(self):
        with pytest.raises((LASemanticError, LASyntaxError)):
            parse_program("Mat A(2, 2) <In, Sparse>;")

    def test_vector_and_scalar_declarations(self):
        program = parse_program("Vec x(5) <InOut>;\nSca alpha <In>;",
                                {"n": 5})
        assert program.operand("x").shape == (5, 1)
        assert program.operand("alpha").is_scalar


class TestParserStatements:
    def test_undeclared_operand_in_statement(self):
        with pytest.raises(LASemanticError):
            parse_program("Mat A(2,2) <Out>;\nA = B;")

    def test_assignment_to_input_rejected(self):
        with pytest.raises(LASemanticError):
            parse_program("Mat A(2,2) <In>;\nMat B(2,2) <In>;\nA = B;")

    def test_transpose_postfix_and_function_form(self):
        source = """
        Mat A(3, 4) <In>;
        Mat B(4, 3) <Out>;
        Mat C(4, 3) <Out>;
        B = A';
        C = trans(A);
        """
        program = parse_program(source)
        assert len(program.statements) == 2

    def test_inverse_marks_statement_as_hlac(self):
        source = """
        Mat L(4, 4) <In, LoTri, NS>;
        Mat X(4, 4) <Out, LoTri>;
        X = inv(L);
        """
        program = parse_program(source)
        assert program.statements[0].is_hlac()

    def test_equation_statement_is_hlac(self):
        source = """
        Mat S(4, 4) <In, UpSym, PD>;
        Mat U(4, 4) <Out, UpTri, NS>;
        U' * U = S;
        """
        program = parse_program(source)
        assert isinstance(program.statements[0], Equation)
        assert program.statements[0].is_hlac()

    def test_for_loop_parses_and_unrolls(self):
        source = """
        Mat A(2, 2) <In>;
        Mat B(2, 2) <InOut>;
        for (i = 0:3) { B = A + B; }
        """
        program = parse_program(source)
        assert len(program.unrolled_statements()) == 3

    def test_dimension_mismatch_is_reported(self):
        source = """
        Mat A(3, 4) <In>;
        Mat B(4, 4) <In>;
        Mat C(3, 3) <Out>;
        C = A + B;
        """
        with pytest.raises(Exception):
            parse_program(source)

    def test_missing_semicolon_is_syntax_error(self):
        with pytest.raises(LASyntaxError):
            parse_program("Mat A(2,2) <In>\n")


class TestPaperPrograms:
    @pytest.mark.parametrize("source,constants", [
        (KF_SOURCE, {"n": 8, "k": 8}),
        (KF_SOURCE, {"n": 12, "k": 4}),
        (GPR_SOURCE, {"n": 10}),
        (L1A_SOURCE, {"n": 16}),
    ])
    def test_application_sources_parse(self, source, constants):
        program = parse_program(source, constants)
        program.validate()
        assert len(program.statements) >= 8

    def test_kf_has_five_hlacs(self):
        program = parse_program(KF_SOURCE, {"n": 6, "k": 6})
        assert len(program.hlacs()) == 5

    def test_gpr_has_four_hlacs(self):
        program = parse_program(GPR_SOURCE, {"n": 6})
        assert len(program.hlacs()) == 4

    def test_l1a_is_hlac_free(self):
        program = parse_program(L1A_SOURCE, {"n": 6})
        assert program.is_basic()
