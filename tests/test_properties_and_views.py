"""Unit tests for matrix properties, the structure algebra, and views."""

import pytest

from repro.errors import DimensionError
from repro.ir import (IOType, Matrix, Operand, Properties, Structure, Vector,
                      add_structure, mul_structure, transpose_structure)
from repro.ir.properties import StorageHalf, scale_structure


class TestProperties:
    def test_from_annotations_lower_triangular(self):
        props = Properties.from_annotations(["LoTri", "NS"])
        assert props.is_lower_triangular
        assert props.non_singular
        assert not props.positive_definite

    def test_from_annotations_symmetric_pd_implies_nonsingular(self):
        props = Properties.from_annotations(["UpSym", "PD"])
        assert props.is_symmetric
        assert props.positive_definite
        assert props.non_singular

    def test_from_annotations_rejects_unknown(self):
        with pytest.raises(ValueError):
            Properties.from_annotations(["Banded"])

    def test_annotation_roundtrip(self):
        names = {"UpTri", "NS", "UnitDiag"}
        props = Properties.from_annotations(names)
        assert props.annotation_names() == frozenset(names)

    def test_transposed_swaps_triangles(self):
        lower = Properties.lower_triangular()
        assert lower.transposed().structure is Structure.UPPER_TRIANGULAR
        assert lower.transposed().storage is StorageHalf.UPPER

    def test_transposed_preserves_symmetry(self):
        sym = Properties.symmetric()
        assert sym.transposed().structure is Structure.SYMMETRIC


class TestStructureAlgebra:
    def test_add_identity_rules(self):
        assert add_structure(Structure.ZERO,
                             Structure.LOWER_TRIANGULAR) is \
            Structure.LOWER_TRIANGULAR
        assert add_structure(Structure.LOWER_TRIANGULAR,
                             Structure.LOWER_TRIANGULAR) is \
            Structure.LOWER_TRIANGULAR
        assert add_structure(Structure.LOWER_TRIANGULAR,
                             Structure.UPPER_TRIANGULAR) is Structure.GENERAL

    def test_add_symmetric(self):
        assert add_structure(Structure.SYMMETRIC,
                             Structure.DIAGONAL) is Structure.SYMMETRIC
        assert add_structure(Structure.IDENTITY,
                             Structure.IDENTITY) is Structure.DIAGONAL

    def test_mul_triangular(self):
        assert mul_structure(Structure.LOWER_TRIANGULAR,
                             Structure.LOWER_TRIANGULAR) is \
            Structure.LOWER_TRIANGULAR
        assert mul_structure(Structure.LOWER_TRIANGULAR,
                             Structure.UPPER_TRIANGULAR) is Structure.GENERAL

    def test_mul_zero_annihilates(self):
        assert mul_structure(Structure.ZERO,
                             Structure.SYMMETRIC) is Structure.ZERO

    def test_mul_identity_neutral(self):
        assert mul_structure(Structure.IDENTITY,
                             Structure.UPPER_TRIANGULAR) is \
            Structure.UPPER_TRIANGULAR

    def test_transpose(self):
        assert transpose_structure(Structure.LOWER_TRIANGULAR) is \
            Structure.UPPER_TRIANGULAR
        assert transpose_structure(Structure.SYMMETRIC) is Structure.SYMMETRIC

    def test_scale_keeps_shape(self):
        assert scale_structure(Structure.IDENTITY) is Structure.DIAGONAL
        assert scale_structure(Structure.SYMMETRIC) is Structure.SYMMETRIC


class TestOperandsAndViews:
    def test_operand_classification(self):
        assert Matrix("A", 4, 5).is_matrix
        assert Vector("x", 4).is_vector
        assert Operand("s", 1, 1).is_scalar

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(DimensionError):
            Operand("A", 0, 3)

    def test_view_bounds_checked(self):
        A = Matrix("A", 4, 4)
        with pytest.raises(DimensionError):
            A.view(2, 2, 3, 3)

    def test_view_overlap_and_containment(self):
        A = Matrix("A", 6, 6)
        top = A.view(0, 0, 3, 6)
        bottom = A.view(3, 0, 3, 6)
        corner = A.view(1, 1, 2, 2)
        assert not top.overlaps(bottom)
        assert top.overlaps(corner)
        assert top.contains(corner)
        assert not bottom.contains(corner)

    def test_view_structure_of_blocks(self):
        L = Matrix("L", 8, 8, properties=Properties.lower_triangular())
        assert L.view(0, 0, 4, 4).structure is Structure.LOWER_TRIANGULAR
        assert L.view(0, 4, 4, 4).structure is Structure.ZERO
        assert L.view(4, 0, 4, 4).structure is Structure.GENERAL

    def test_view_of_different_operands_never_overlaps(self):
        A, B = Matrix("A", 4, 4), Matrix("B", 4, 4)
        assert not A.full_view().overlaps(B.full_view())

    def test_element_and_row_views(self):
        A = Matrix("A", 4, 6)
        assert A.element(1, 2).shape == (1, 1)
        assert A.full_view().row(2).shape == (1, 6)
        assert A.full_view().column(3).shape == (4, 1)

    def test_io_classification(self):
        assert Matrix("A", 2, 2, IOType.INOUT).is_input
        assert Matrix("A", 2, 2, IOType.INOUT).is_output
        assert not Matrix("A", 2, 2, IOType.IN).is_output
