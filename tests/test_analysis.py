"""The static verifier: passes, dataflow, gate wiring, CLI, witnesses."""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import (gate_artifact, reset_stats, stats_snapshot,
                            verify_artifact, verify_function, verify_program)
from repro.analysis import verifier as verifier_mod
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.cfg import build_cfg
from repro.analysis.defuse import (check_element_defuse,
                                   check_register_defuse, element_events)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.liveness import check_dead_registers, check_double_writes
from repro.analysis.serialize import (artifact_from_doc, artifact_to_doc,
                                      load_fixture)
from repro.analysis.structure import structurally_zero
from repro.analysis.witnesses import (out_of_bounds_function,
                                      wrong_coefficient_program)
from repro.cir.nodes import (Affine, Assign as CAssign, BinOp, Buffer,
                             FloatConst, For, Function, Load, ScalarVar,
                             Store)
from repro.errors import AnalysisError, ConfigurationError
from repro.ir.expr import Add, Const, Div, Mul, Neg, Ref
from repro.ir.operands import IOType, Operand
from repro.ir.program import Assign, Program
from repro.ir.properties import Properties
from repro.pipeline.cache import PhaseCache
from repro.service.registry import build_case, parse_spec
from repro.slingen.generator import SLinGen
from repro.slingen.options import Options

WITNESS_DIR = os.path.join(os.path.dirname(__file__), "analysis_witnesses")


def make_fn(body, params, temps=(), width=1, name="t"):
    return Function(name=name, params=list(params), temps=list(temps),
                    body=list(body), vector_width=width)


@pytest.fixture(autouse=True)
def _fresh_stats():
    reset_stats()
    yield
    reset_stats()


@pytest.fixture
def corrupting_pass(monkeypatch):
    """Append a C-IR pass that flags every function, simulating a
    generator bug the real passes would catch."""
    def always_fails(fn):
        return [Diagnostic("widths", "error", "injected failure", fn.name)]
    monkeypatch.setattr(
        verifier_mod, "FUNCTION_PASSES",
        verifier_mod.FUNCTION_PASSES + (("injected", always_fails),))


class TestCfgAndDataflow:
    def test_straight_line_is_one_block(self):
        x = Buffer("x", 4, 1, "in")
        y = Buffer("y", 4, 1, "out")
        cfg = build_cfg([Store(y, Affine.constant(i),
                               Load(x, Affine.constant(i)))
                         for i in range(4)])
        assert len(cfg.topological_order()) >= 1

    def test_deep_block_chain_does_not_recurse(self):
        # A chain of thousands of single-iteration loops makes thousands
        # of basic blocks in a line; the postorder DFS must be iterative.
        x = Buffer("x", 1, 1, "in")
        y = Buffer("y", 1, 1, "out")
        body = [For("i", 0, 1, 1,
                    [Store(y, Affine.constant(0),
                           Load(x, Affine.constant(0)))])
                for _ in range(2500)]
        cfg = build_cfg(body)
        order = cfg.topological_order()
        assert len(order) == len(set(order))
        assert check_register_defuse(make_fn(body, [x, y])) == []

    def test_register_use_before_def_is_error(self):
        y = Buffer("y", 1, 1, "out")
        fn = make_fn([Store(y, Affine.constant(0), ScalarVar("t0"))], [y])
        diags = check_register_defuse(fn)
        assert any(d.severity == "error" and "t0" in d.message
                   for d in diags)

    def test_def_inside_zero_trip_loop_does_not_reach_use(self):
        y = Buffer("y", 1, 1, "out")
        fn = make_fn([
            For("i", 0, 0, 1, [CAssign(ScalarVar("t0"), FloatConst(1.0))]),
            Store(y, Affine.constant(0), ScalarVar("t0")),
        ], [y])
        assert any(d.severity == "error" for d in check_register_defuse(fn))

    def test_defined_register_is_clean(self):
        y = Buffer("y", 1, 1, "out")
        fn = make_fn([
            CAssign(ScalarVar("t0"), FloatConst(2.0)),
            Store(y, Affine.constant(0),
                  BinOp("mul", ScalarVar("t0"), ScalarVar("t0"))),
        ], [y])
        assert check_register_defuse(fn) == []


class TestFunctionPasses:
    def test_bounds_flags_the_oob_witness(self):
        diags = [d for d in verify_function(out_of_bounds_function()).errors
                 if d.pass_name == "bounds"]
        assert len(diags) == 2
        assert any("x" in d.message for d in diags)
        assert any("y" in d.message for d in diags)

    def test_in_bounds_version_is_clean(self):
        x = Buffer("x", 4, 1, "in")
        y = Buffer("y", 4, 1, "out")
        fn = make_fn([For("i", 0, 4, 1,
                          [Store(y, Affine.var("i"),
                                 Load(x, Affine.var("i")))])], [x, y])
        assert verify_function(fn).ok

    def test_invalid_vector_width_is_error(self):
        fn = make_fn([], [Buffer("y", 1, 1, "out")], width=3)
        assert any(d.pass_name == "widths"
                   for d in verify_function(fn).errors)

    def test_stale_implicit_zero_read_warns(self):
        # t[0] is read, then written: the read observed the implicit
        # zero instead of the value that later defines it.
        t = Buffer("t", 1, 1, "temp")
        y = Buffer("y", 1, 1, "out")
        fn = make_fn([
            Store(y, Affine.constant(0), Load(t, Affine.constant(0))),
            Store(t, Affine.constant(0), FloatConst(1.0)),
        ], [y], temps=[t])
        diags = check_element_defuse(fn)
        assert any(d.severity == "warn" for d in diags)
        assert not any(d.severity == "error" for d in diags)

    def test_never_written_temp_read_is_silent(self):
        # Reading a temp that nothing ever writes is the designed
        # implicit-zero idiom -- must not warn.
        t = Buffer("t", 1, 1, "temp")
        y = Buffer("y", 1, 1, "out")
        fn = make_fn([Store(y, Affine.constant(0),
                            Load(t, Affine.constant(0)))],
                     [y], temps=[t])
        assert check_element_defuse(fn) == []

    def test_double_write_warns_once_per_pair(self):
        y = Buffer("y", 1, 1, "out")
        fn = make_fn([
            Store(y, Affine.constant(0), FloatConst(1.0)),
            Store(y, Affine.constant(0), FloatConst(2.0)),
        ], [y])
        diags = check_double_writes(fn)
        assert len(diags) == 1 and diags[0].severity == "warn"

    def test_dead_register_store_warns(self):
        y = Buffer("y", 1, 1, "out")
        fn = make_fn([
            CAssign(ScalarVar("dead"), FloatConst(1.0)),
            Store(y, Affine.constant(0), FloatConst(0.0)),
        ], [y])
        assert any(d.severity == "warn" and "dead" in d.message
                   for d in check_dead_registers(fn))

    def test_truncated_walk_is_reported_and_silent(self):
        x = Buffer("x", 4, 1, "in")
        y = Buffer("y", 4, 1, "out")
        fn = make_fn([For("i", 0, 4, 1,
                          [Store(y, Affine.var("i"),
                                 Load(x, Affine.var("i")))])], [x, y])
        stream, status = element_events(fn, limit=3)
        list(stream)
        assert not status.complete
        # The full-default-limit passes still see this tiny function.
        assert check_element_defuse(fn) == []


class TestStructurePasses:
    def test_structurally_zero_predicate(self):
        t = Program(name="p").declare(Operand(
            "T", 3, 3, IOType.IN, Properties.upper_triangular()))
        zero_ref = Ref(t.element(2, 0))       # below the diagonal
        live_ref = Ref(t.element(0, 2))
        assert structurally_zero(zero_ref)
        assert not structurally_zero(live_ref)
        assert structurally_zero(Const(0.0))
        assert structurally_zero(Mul(live_ref, zero_ref))
        assert structurally_zero(Neg(zero_ref))
        assert structurally_zero(Add(zero_ref, Const(0.0)))
        assert not structurally_zero(Add(zero_ref, live_ref))
        assert structurally_zero(Div(zero_ref, live_ref))
        assert not structurally_zero(Div(live_ref, zero_ref))

    def test_wrong_coefficient_witness_is_degenerate(self):
        report = verify_program(wrong_coefficient_program())
        assert not report.ok
        degenerate = [d for d in report.errors
                      if "structurally-zero expression" in d.message]
        assert len(degenerate) == 3     # every off-diagonal assignment
        assert any(d.severity == "warn" for d in report.warnings)

    def test_structural_division_by_zero_is_error(self):
        program = Program(name="divzero")
        t = program.declare(Operand("T", 2, 2, IOType.IN,
                                    Properties.upper_triangular()))
        y = program.declare(Operand("y", 2, 2, IOType.OUT, Properties()))
        program.add(Assign(y.element(0, 0),
                           Div(Ref(t.element(0, 1)), Ref(t.element(1, 0)))))
        report = verify_program(program)
        assert any("denominator" in d.message for d in report.errors)

    def test_clean_program_verifies(self):
        program = Program(name="clean")
        a = program.declare(Operand("A", 2, 2, IOType.IN, Properties()))
        y = program.declare(Operand("y", 2, 2, IOType.OUT, Properties()))
        for i in range(2):
            for j in range(2):
                program.add(Assign(y.element(i, j),
                                   Mul(Ref(a.element(i, j)), Const(2.0))))
        assert verify_program(program).ok


class TestWitnessFixtures:
    def test_committed_fixtures_match_builders(self):
        for name, builder in (
                ("trtri_transposed_wrong_coeff.json",
                 wrong_coefficient_program),
                ("oob_function.json", out_of_bounds_function)):
            path = os.path.join(WITNESS_DIR, name)
            with open(path, "r", encoding="utf-8") as handle:
                committed = json.load(handle)
            assert committed == artifact_to_doc(builder()), name

    def test_fixture_round_trip_verifies_identically(self):
        for builder in (wrong_coefficient_program, out_of_bounds_function):
            artifact = builder()
            clone = artifact_from_doc(artifact_to_doc(artifact))
            want = [d.describe() for d in verify_artifact(artifact).errors]
            got = [d.describe() for d in verify_artifact(clone).errors]
            assert want == got and want

    def test_load_fixture_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": 1, \"kind\": \"program\"}")
        with pytest.raises(AnalysisError):
            load_fixture(str(bad))


class TestGate:
    def test_invalid_mode_rejected_by_options(self):
        with pytest.raises(ConfigurationError):
            Options(analysis="loud").validate()

    def test_gate_artifact_strict_raises_and_counts(self):
        with pytest.raises(AnalysisError) as err:
            gate_artifact("stage1", wrong_coefficient_program(), "strict")
        assert "structurally-zero" in str(err.value)
        assert stats_snapshot()["strict_failures"] == 1
        assert stats_snapshot()["errors"] >= 3

    def test_gate_artifact_warn_counts_without_raising(self):
        gate_artifact("stage1", wrong_coefficient_program(), "warn")
        snap = stats_snapshot()
        assert snap["programs_checked"] == 1
        assert snap["errors"] >= 3 and snap["strict_failures"] == 0

    def test_strict_generation_passes_on_clean_kernel(self):
        case = build_case(parse_spec("potrf:4"))
        options = Options(autotune=False, analysis="strict")
        result = SLinGen(options,
                         phase_cache=PhaseCache()).generate_result(
            case.program)
        assert result.c_code
        snap = stats_snapshot()
        assert snap["functions_checked"] > 0 and snap["errors"] == 0

    def test_strict_blocks_bad_artifact_from_phase_cache(
            self, corrupting_pass):
        case = build_case(parse_spec("potrf:4"))
        cache = PhaseCache()
        with pytest.raises(AnalysisError):
            SLinGen(Options(autotune=False, analysis="strict"),
                    phase_cache=cache).generate_result(case.program)
        entries = cache.stats()["entries"]
        # The program-level phases pass; the first gated C-IR artifact
        # (lower) fails before cache.put, so nothing downstream lands.
        assert entries["lower"] == 0 and entries["optimize"] == 0
        assert stats_snapshot()["strict_failures"] >= 1

    def test_warn_mode_lets_bad_artifact_through_but_counts(
            self, corrupting_pass):
        case = build_case(parse_spec("potrf:4"))
        result = SLinGen(Options(autotune=False, analysis="warn"),
                         phase_cache=PhaseCache()).generate_result(
            case.program)
        assert result.c_code
        snap = stats_snapshot()
        assert snap["errors"] > 0 and snap["strict_failures"] == 0

    def test_gate_axis_feeds_no_keys(self):
        from repro.pipeline.keys import GATE_AXES, partition
        from repro.service.keys import cache_key, canonical_options
        assert partition()["gate"] == ("analysis",)
        case = build_case(parse_spec("potrf:4"))
        off = Options(autotune=False)
        strict = Options(autotune=False, analysis="strict")
        assert "analysis" not in canonical_options(off)
        assert cache_key(case.program, off) == cache_key(case.program,
                                                        strict)
        assert GATE_AXES == ("analysis",)


class TestServiceGate:
    def test_strict_service_blocks_kernel_store(self, corrupting_pass):
        from repro.service import KernelService, make_request
        from repro.service.store import MemoryKernelStore
        from repro.pipeline.cache import reset_shared_phase_cache
        reset_shared_phase_cache()
        store = MemoryKernelStore()
        service = KernelService(store=store, analysis="strict")
        with pytest.raises(AnalysisError):
            service.generate(make_request(
                "potrf:4", options=Options(autotune=False)))
        assert store.stats()["entries"] == 0       # nothing was served
        assert service.stats.snapshot()["analysis"]["strict_failures"] >= 1

    def test_strict_service_serves_clean_kernel_with_stats(self):
        from repro.service import KernelService, make_request
        from repro.service.store import MemoryKernelStore
        from repro.pipeline.cache import reset_shared_phase_cache
        reset_shared_phase_cache()
        service = KernelService(store=MemoryKernelStore(),
                                analysis="strict")
        response = service.generate(make_request(
            "potrf:4", options=Options(autotune=False)))
        assert response.result.c_code
        snap = service.stats.snapshot()
        assert snap["analysis"]["functions_checked"] > 0
        assert snap["analysis"]["strict_failures"] == 0

    def test_invalid_service_mode_rejected(self):
        from repro.service import KernelService
        from repro.service.store import MemoryKernelStore
        with pytest.raises(ConfigurationError):
            KernelService(store=MemoryKernelStore(), analysis="loud")


class TestOracleIntegration:
    def test_cegis_verifier_refutes_statically(self, corrupting_pass):
        from repro.cegis.verifier import find_counterexample
        case = build_case(parse_spec("potrf:4"))
        counterexample = find_counterexample(
            case.program, case.program, Options(autotune=False),
            budget=1, backends="numpy", phase_cache=PhaseCache())
        assert counterexample is not None
        assert counterexample.stage == "analysis"
        assert counterexample.error_type == "AnalysisError"
        assert "static refutation" in counterexample.describe()

    def test_fuzz_oracle_classifies_analysis_crash(self, corrupting_pass):
        from repro.fuzz.generate import sample_case
        from repro.fuzz.oracle import run_case
        result = run_case(sample_case(0), backends="numpy",
                          phase_cache=PhaseCache())
        assert result.status == "crash"
        assert result.stage == "analysis"
        assert result.error_type == "AnalysisError"


class TestCli:
    def test_check_registry_spec_exits_zero(self, capsys):
        assert analysis_main(["check", "potrf:4", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == 1 and doc["ok"]
        assert doc["counts"]["errors"] == 0
        assert doc["targets"][0]["kind"] == "registry"

    def test_check_witnesses_exit_one(self, capsys):
        paths = [os.path.join(WITNESS_DIR, name)
                 for name in ("trtri_transposed_wrong_coeff.json",
                              "oob_function.json")]
        assert analysis_main(["check", *paths, "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert not doc["ok"]
        assert doc["counts"]["errors"] >= 5
        assert all(t["kind"] == "fixture" and not t["ok"]
                   for t in doc["targets"])

    def test_lint_shows_warnings_but_exit_tracks_errors(self, capsys):
        assert analysis_main(["lint", "potrf:4"]) == 0
        out = capsys.readouterr().out
        assert "static analysis clean" in out

    def test_corpus_entry_target(self, capsys):
        corpus = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
        entries = sorted(name for name in os.listdir(corpus)
                         if name.endswith(".json"))
        assert analysis_main(
            ["check", os.path.join(corpus, entries[0]), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["targets"][0]["kind"] == "corpus"

    def test_bad_const_is_usage_error(self, capsys):
        assert analysis_main(["check", "x.la", "--const", "oops"]) == 2
        assert "error:" in capsys.readouterr().err
