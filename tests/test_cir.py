"""Tests for the C-IR: affine expressions, interpreter semantics, passes."""

import numpy as np
import pytest

from repro.cir import (Affine, Assign, BinOp, Buffer, FloatConst, For,
                       Function, Interpreter, Load, ScalarVar, Store, UnOp,
                       VBinOp, VBlend, VBroadcast, VecVar, VLoad,
                       VPermute2f128, VShufflePd, VStore, VUnpack, VZero,
                       run_function)
from repro.cir.passes import (PassOptions, eliminate_dead_code,
                              eliminate_redundant_loads,
                              forward_stores_to_loads, run_pipeline, simplify,
                              unroll_loops)
from repro.errors import CIRError, InterpreterError


class TestAffine:
    def test_algebra(self):
        expr = Affine.var("i") * 3 + 2 + Affine.var("j")
        assert expr.evaluate({"i": 4, "j": 5}) == 19
        assert (expr - Affine.var("j")).evaluate({"i": 1}) == 5

    def test_substitution_partial(self):
        expr = Affine.var("i") + Affine.var("j", 2)
        partial = expr.substitute({"i": 3})
        assert partial.evaluate({"j": 1}) == 5

    def test_constant_detection(self):
        assert Affine.constant(7).is_constant
        assert Affine.constant(7).value() == 7
        with pytest.raises(CIRError):
            Affine.var("i").value()

    def test_zero_coefficients_dropped(self):
        expr = Affine.var("i") - Affine.var("i")
        assert expr.is_constant

    def test_str_rendering(self):
        assert str(Affine.var("i", 2) + 3) == "2*i + 3"


def _make_function(body, params, temps=(), width=4):
    return Function("test_kernel", params=list(params), temps=list(temps),
                    body=body, vector_width=width)


class TestInterpreter:
    def test_scalar_loop_sums(self):
        a = Buffer("a", 1, 8, "in")
        out = Buffer("out", 1, 1, "out")
        acc = ScalarVar("acc")
        body = [
            Assign(acc, FloatConst(0.0)),
            For("i", 0, 8, 1,
                [Assign(acc, BinOp("add", acc, Load(a, Affine.var("i"))))]),
            Store(out, Affine.constant(0), acc),
        ]
        func = _make_function(body, [a, out], width=1)
        data = np.arange(8.0).reshape(1, 8)
        result = run_function(func, {"a": data})
        assert result["out"][0, 0] == pytest.approx(data.sum())

    def test_vector_ops_match_numpy(self):
        a = Buffer("a", 1, 4, "in")
        b = Buffer("b", 1, 4, "in")
        out = Buffer("out", 1, 4, "out")
        va, vb = VecVar("va"), VecVar("vb")
        body = [
            Assign(va, VLoad(a, Affine.constant(0))),
            Assign(vb, VLoad(b, Affine.constant(0))),
            VStore(out, Affine.constant(0),
                   VBinOp("add", VBinOp("mul", va, vb), va)),
        ]
        func = _make_function(body, [a, b, out])
        x = np.array([[1.0, 2.0, 3.0, 4.0]])
        y = np.array([[5.0, 6.0, 7.0, 8.0]])
        result = run_function(func, {"a": x, "b": y})
        np.testing.assert_allclose(result["out"], x * y + x)

    def test_masked_load_and_store(self):
        a = Buffer("a", 1, 4, "in")
        out = Buffer("out", 1, 4, "out")
        mask = (True, True, False, False)
        body = [VStore(out, Affine.constant(0),
                       VLoad(a, Affine.constant(0), 4, mask), 4, mask)]
        func = _make_function(body, [a, out])
        result = run_function(func, {"a": np.array([[1.0, 2.0, 3.0, 4.0]])})
        np.testing.assert_allclose(result["out"], [[1.0, 2.0, 0.0, 0.0]])

    @pytest.mark.parametrize("imm", [0x0, 0x3, 0x5, 0xF])
    def test_blend_semantics(self, imm):
        a = Buffer("a", 1, 4, "in")
        b = Buffer("b", 1, 4, "in")
        out = Buffer("out", 1, 4, "out")
        body = [VStore(out, Affine.constant(0),
                       VBlend(VLoad(a, Affine.constant(0)),
                              VLoad(b, Affine.constant(0)), imm))]
        func = _make_function(body, [a, b, out])
        x = np.array([[0.0, 1.0, 2.0, 3.0]])
        y = np.array([[10.0, 11.0, 12.0, 13.0]])
        result = run_function(func, {"a": x, "b": y})
        expected = np.where([(imm >> lane) & 1 for lane in range(4)], y, x)
        np.testing.assert_allclose(result["out"], expected.reshape(1, 4))

    def test_transpose_shuffle_sequence(self):
        # unpacklo/hi + permute2f128 implement a 4x4 transpose; check one
        # output row against numpy.
        a = Buffer("a", 4, 4, "in")
        out = Buffer("out", 1, 4, "out")
        rows = [VecVar(f"r{i}") for i in range(4)]
        body = [Assign(rows[i], VLoad(a, Affine.constant(4 * i)))
                for i in range(4)]
        lo01 = VecVar("lo01")
        lo23 = VecVar("lo23")
        body += [Assign(lo01, VUnpack(rows[0], rows[1], high=False)),
                 Assign(lo23, VUnpack(rows[2], rows[3], high=False)),
                 VStore(out, Affine.constant(0),
                        VPermute2f128(lo01, lo23, 0x20))]
        func = _make_function(body, [a, out])
        data = np.arange(16.0).reshape(4, 4)
        result = run_function(func, {"a": data})
        np.testing.assert_allclose(result["out"].ravel(), data.T[0])

    def test_shuffle_pd_semantics(self):
        a = Buffer("a", 1, 4, "in")
        b = Buffer("b", 1, 4, "in")
        out = Buffer("out", 1, 4, "out")
        body = [VStore(out, Affine.constant(0),
                       VShufflePd(VLoad(a, Affine.constant(0)),
                                  VLoad(b, Affine.constant(0)), 0b0101))]
        func = _make_function(body, [a, b, out])
        x = np.array([[0.0, 1.0, 2.0, 3.0]])
        y = np.array([[10.0, 11.0, 12.0, 13.0]])
        result = run_function(func, {"a": x, "b": y})
        np.testing.assert_allclose(result["out"], [[1.0, 10.0, 3.0, 12.0]])

    def test_out_of_bounds_access_raises(self):
        a = Buffer("a", 1, 4, "in")
        out = Buffer("out", 1, 1, "out")
        body = [Store(out, Affine.constant(0), Load(a, Affine.constant(9)))]
        func = _make_function(body, [a, out], width=1)
        with pytest.raises(InterpreterError):
            run_function(func, {"a": np.zeros((1, 4))})

    def test_missing_input_raises(self):
        a = Buffer("a", 1, 4, "in")
        func = _make_function([], [a], width=1)
        with pytest.raises(InterpreterError):
            run_function(func, {})

    def test_sqrt_of_negative_is_nan(self):
        # C's sqrt() returns NaN for negative arguments; the interpreter
        # must match the compiled backend instead of raising.
        a = Buffer("a", 1, 1, "in")
        out = Buffer("out", 1, 1, "out")
        body = [Store(out, Affine.constant(0),
                      UnOp("sqrt", Load(a, Affine.constant(0))))]
        func = _make_function(body, [a, out], width=1)
        result = run_function(func, {"a": np.array([[-1.0]])})
        assert np.isnan(result["out"][0, 0])


class TestPasses:
    def _sum_kernel(self):
        a = Buffer("a", 1, 8, "in")
        out = Buffer("out", 1, 1, "out")
        acc = ScalarVar("acc")
        dead = ScalarVar("dead")
        body = [
            Assign(acc, FloatConst(0.0)),
            Assign(dead, FloatConst(42.0)),
            For("i", 0, 8, 1,
                [Assign(acc, BinOp("add", acc, Load(a, Affine.var("i"))))]),
            Store(out, Affine.constant(0), acc),
        ]
        return _make_function(body, [a, out], width=1), a, out

    def test_unroll_preserves_semantics(self):
        func, a, out = self._sum_kernel()
        data = np.arange(8.0).reshape(1, 8)
        before = run_function(func, {"a": data})
        func.body = unroll_loops(func.body, max_trip_count=8,
                                 max_body_statements=64)
        assert not any(isinstance(s, For) for s in func.body)
        after = run_function(func, {"a": data})
        np.testing.assert_allclose(before["out"], after["out"])

    def test_dce_removes_dead_assignment(self):
        func, *_ = self._sum_kernel()
        func.body = eliminate_dead_code(func.body)
        names = [s.dest.name for s in func.body if isinstance(s, Assign)]
        assert "dead" not in names
        assert "acc" in names

    def test_redundant_load_elimination(self):
        a = Buffer("a", 1, 4, "in")
        out = Buffer("out", 1, 2, "out")
        load = Load(a, Affine.constant(1))
        body = [Store(out, Affine.constant(0), BinOp("mul", load, load)),
                Store(out, Affine.constant(1), load)]
        func = _make_function(body, [a, out], width=1)
        data = np.array([[3.0, 5.0, 7.0, 9.0]])
        before = run_function(func, {"a": data})
        func.body = eliminate_redundant_loads(func.body)
        loads = [e for s in func.body
                 for e in __import__("repro.cir.nodes", fromlist=["x"])
                 .walk_expressions(s) if isinstance(e, Load)]
        assert len(loads) == 1
        after = run_function(func, {"a": data})
        np.testing.assert_allclose(before["out"], after["out"])

    def test_store_load_forwarding_full_register(self):
        buf = Buffer("t", 1, 4, "temp")
        out = Buffer("out", 1, 4, "out")
        v = VecVar("v")
        body = [Assign(v, VBroadcast(FloatConst(2.0))),
                VStore(buf, Affine.constant(0), v),
                VStore(out, Affine.constant(0),
                       VBinOp("add", VLoad(buf, Affine.constant(0)),
                              VZero()))]
        func = _make_function(body, [out], temps=[buf])
        rewritten, stats = forward_stores_to_loads(func.body)
        assert stats.forwarded_full == 1
        func.body = rewritten
        result = run_function(func, {})
        np.testing.assert_allclose(result["out"], [[2.0] * 4])

    def test_store_load_forwarding_blend(self):
        buf = Buffer("t", 1, 4, "temp")
        out = Buffer("out", 1, 4, "out")
        v1, v2 = VecVar("v1"), VecVar("v2")
        body = [
            Assign(v1, VBroadcast(FloatConst(1.0))),
            Assign(v2, VBroadcast(FloatConst(9.0))),
            VStore(buf, Affine.constant(0), v1, 4, (True, True, False, False)),
            VStore(buf, Affine.constant(0), v2, 4, (False, False, True, True)),
            VStore(out, Affine.constant(0), VLoad(buf, Affine.constant(0))),
        ]
        func = _make_function(body, [out], temps=[buf])
        rewritten, stats = forward_stores_to_loads(func.body)
        assert stats.forwarded_blend == 1
        func.body = rewritten
        result = run_function(func, {})
        np.testing.assert_allclose(result["out"], [[1.0, 1.0, 9.0, 9.0]])

    def test_simplify_removes_identities(self):
        out = Buffer("out", 1, 1, "out")
        body = [Store(out, Affine.constant(0),
                      BinOp("add", BinOp("mul", FloatConst(1.0),
                                         FloatConst(5.0)),
                            FloatConst(0.0)))]
        simplified = simplify(body)
        assert isinstance(simplified[0].value, FloatConst)
        assert simplified[0].value.value == 5.0

    def test_full_pipeline_preserves_semantics(self):
        func, a, out = self._sum_kernel()
        data = np.arange(8.0).reshape(1, 8)
        before = run_function(func, {"a": data})
        report = run_pipeline(func, PassOptions())
        after = run_function(func, {"a": data})
        np.testing.assert_allclose(before["out"], after["out"])
        assert report.statements_before > 0
