"""Tests for the documentation tooling: the generated CLI reference stays
in sync with the argparse parsers, and every relative link resolves."""

import os

from repro.docs import check_links, default_doc_paths, render_cli_reference
from repro.docs.__main__ import main as docs_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CLI_MD = os.path.join(REPO_ROOT, "docs", "cli.md")


class TestCliReference:
    def test_rendering_is_deterministic(self):
        assert render_cli_reference() == render_cli_reference()

    def test_rendering_is_environment_independent(self, monkeypatch):
        baseline = render_cli_reference()
        # Cache-dir defaults are interpolated into help strings; rendering
        # must pin them so the committed file never leaks a machine's $HOME.
        monkeypatch.setenv("REPRO_KERNEL_CACHE", "/tmp/elsewhere/kernels")
        monkeypatch.setenv("REPRO_TUNING_DB", "/tmp/elsewhere/tuning")
        monkeypatch.setenv("COLUMNS", "203")
        assert render_cli_reference() == baseline

    def test_committed_cli_md_is_in_sync(self):
        with open(CLI_MD, "r", encoding="utf-8") as handle:
            committed = handle.read()
        assert committed == render_cli_reference(), (
            "docs/cli.md is stale; regenerate with "
            "`PYTHONPATH=src python -m repro.docs cli-ref`")

    def test_every_entry_point_is_documented(self):
        rendered = render_cli_reference()
        for prog in ("python -m repro.service", "python -m repro.tuning",
                     "python -m repro.backend", "python -m repro.docs"):
            assert f"## `{prog}`" in rendered
        # Spot-check subcommand sections, including this PR's daemon.
        for sub in ("repro.service serve", "repro.service warm",
                    "repro.tuning tune", "repro.backend crosscheck",
                    "repro.docs cli-ref"):
            assert f"### `python -m {sub}`" in rendered

    def test_check_mode_detects_staleness(self, tmp_path, capsys):
        target = tmp_path / "cli.md"
        assert docs_main(["cli-ref", "--output", str(target)]) == 0
        assert docs_main(["cli-ref", "--output", str(target),
                          "--check"]) == 0
        target.write_text(target.read_text() + "\ndrift\n")
        assert docs_main(["cli-ref", "--output", str(target),
                          "--check"]) == 1
        assert "stale" in capsys.readouterr().err

    def test_check_mode_fails_on_missing_file(self, tmp_path):
        assert docs_main(["cli-ref", "--check", "--output",
                          str(tmp_path / "absent.md")]) == 1


class TestLinkCheck:
    def test_repo_markdown_has_no_broken_relative_links(self):
        paths = default_doc_paths(REPO_ROOT)
        assert any(p.endswith("README.md") for p in paths)
        assert any(os.sep + "docs" + os.sep in p for p in paths)
        assert check_links(paths, repo_root=REPO_ROOT) == []

    def test_docs_tree_is_complete(self):
        names = {os.path.basename(p) for p in default_doc_paths(REPO_ROOT)}
        assert {"architecture.md", "pipeline.md", "backends.md",
                "serving.md", "reproducing.md", "cli.md"} <= names

    def test_broken_link_is_reported(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("see [here](missing.md) and [ok](doc.md) and "
                      "[web](https://example.com) and [anchor](#sec)\n")
        broken = check_links([str(md)], repo_root=str(tmp_path))
        assert broken == [("doc.md", "missing.md")]

    def test_links_escaping_the_repo_are_ignored(self, tmp_path):
        md = tmp_path / "doc.md"
        md.write_text("[badge](../../actions/workflows/ci.yml)\n")
        assert check_links([str(md)], repo_root=str(tmp_path)) == []

    def test_anchored_relative_links_resolve_on_the_file(self, tmp_path):
        (tmp_path / "other.md").write_text("# x\n")
        md = tmp_path / "doc.md"
        md.write_text("[sec](other.md#section)\n[gone](gone.md#x)\n")
        broken = check_links([str(md)], repo_root=str(tmp_path))
        assert broken == [("doc.md", "gone.md#x")]

    def test_linkcheck_cli(self, tmp_path, capsys):
        md = tmp_path / "doc.md"
        md.write_text("[gone](missing.md)\n")
        assert docs_main(["linkcheck", str(md), "--root",
                          str(tmp_path)]) == 1
        assert "missing.md" in capsys.readouterr().err
        md.write_text("all good\n")
        assert docs_main(["linkcheck", str(md), "--root",
                          str(tmp_path)]) == 0
