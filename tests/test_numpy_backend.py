"""Tests of the NumPy execution backend (C-IR -> Python/NumPy kernels).

Covers the translator's node semantics against the interpreter (the
reference), both emission modes, masked edge-of-buffer accesses, the
content-addressed source cache, the executor resolution used by the
service/bench layers, and the `numpy` tuning measurer.
"""

import os

import numpy as np
import pytest

from repro.applications.cases import make_case
from repro.backend import (EXECUTORS, compiler_available, make_executor,
                           compile_numpy_kernel, translate_function)
from repro.backend.numpy_backend import (MODES, NumPyKernel, NumPyTranslator,
                                         _mangle)
from repro.cir.interpreter import Interpreter, InterpreterKernel
from repro.cir.nodes import (Affine, Assign, BinOp, Buffer, FloatConst, For,
                             Function, If, Load, ScalarVar, Store, UnOp,
                             VBinOp, VBlend, VBroadcast, VecVar, VExtract,
                             VFma, VLoad, VPermute2f128, VReduceAdd, VSet,
                             VShufflePd, VStore, VUnpack, VZero)
from repro.errors import BackendError
from repro.slingen import Options, SLinGen


def generate(name: str, size: int, vectorize: bool = True):
    case = make_case(name, size)
    result = SLinGen(Options(vectorize=vectorize, annotate_code=False)) \
        .generate_result(case.program, nominal_flops=case.nominal_flops)
    return case, result


def assert_backends_match(function, inputs, atol=1e-12):
    expected = Interpreter(function).run(inputs)
    for mode in MODES:
        got = compile_numpy_kernel(function, mode=mode).run(inputs)
        assert set(got) == set(expected)
        for key in expected:
            np.testing.assert_allclose(got[key], expected[key], atol=atol,
                                       rtol=0, err_msg=f"{mode}:{key}")


# ---------------------------------------------------------------------------
# Node-level semantics (synthetic functions, both modes vs. interpreter)
# ---------------------------------------------------------------------------


class TestVectorNodeSemantics:
    def _run(self, body, x_vals=(1.0, -2.0, 3.5, 0.25, 7.0, -1.5, 2.0, 4.0)):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 8, "out")
        fn = Function("node_kernel", params=[x, y], body=body,
                      vector_width=4)
        inputs = {"x": np.array([x_vals], dtype=np.float64)}
        expected = Interpreter(fn).run(inputs)
        for mode in MODES:
            got = compile_numpy_kernel(fn, mode=mode).run(inputs)
            np.testing.assert_allclose(got["y"], expected["y"], atol=0,
                                       rtol=0, err_msg=mode)
        return expected["y"]

    def _xy(self):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 8, "out")
        return x, y

    def test_vload_vstore_roundtrip(self):
        x, y = self._xy()
        body = [VStore(y, Affine.constant(0),
                       VLoad(x, Affine.constant(4)))]
        fn = Function("node_kernel", params=[x, y], body=body,
                      vector_width=4)
        inputs = {"x": np.arange(8.0)}
        assert_backends_match(fn, inputs)

    def test_arith_fma_blend_shuffle_permute_unpack(self):
        x, y = self._xy()
        a = VecVar("a")
        b = VecVar("b")
        body = [
            Assign(a, VLoad(x, Affine.constant(0))),
            Assign(b, VLoad(x, Affine.constant(4))),
            Assign(VecVar("s"), VBinOp("add", a, b)),
            Assign(VecVar("m"), VBinOp("mul", a, b)),
            Assign(VecVar("mx"), VBinOp("max", a, b)),
            Assign(VecVar("mn"), VBinOp("min", a, b)),
            Assign(VecVar("f"), VFma(a, b, VecVar("s"))),
            Assign(VecVar("bl"), VBlend(a, b, 0b0110)),
            Assign(VecVar("sh"), VShufflePd(a, b, 0b1011)),
            Assign(VecVar("pm"), VPermute2f128(a, b, 0x21)),
            Assign(VecVar("up"), VUnpack(a, b, high=True)),
            VStore(y, Affine.constant(0), VBinOp("add", VecVar("f"),
                                                 VBinOp("add", VecVar("bl"),
                                                        VecVar("sh")))),
            VStore(y, Affine.constant(4), VBinOp("sub", VecVar("pm"),
                                                 VBinOp("div", VecVar("up"),
                                                        VecVar("mx")))),
        ]
        fn = Function("node_kernel", params=[x, y], body=body,
                      vector_width=4)
        inputs = {"x": np.array([1.0, -2.0, 3.5, 0.25, 7.0, -1.5, 2.0,
                                 4.0])}
        assert_backends_match(fn, inputs)

    def test_permute_zero_halves_and_duplication(self):
        x, y = self._xy()
        a = VecVar("a")
        body = [
            Assign(a, VLoad(x, Affine.constant(0))),
            # high half zeroed, low half = high half of a
            Assign(VecVar("p1"), VPermute2f128(a, a, 0x81)),
            # both halves = low half of a (lane duplication)
            Assign(VecVar("p2"), VPermute2f128(a, a, 0x00)),
            VStore(y, Affine.constant(0), VecVar("p1")),
            VStore(y, Affine.constant(4), VecVar("p2")),
        ]
        fn = Function("node_kernel", params=[x, y], body=body,
                      vector_width=4)
        assert_backends_match(fn, {"x": np.arange(1.0, 9.0)})

    def test_reduce_extract_broadcast_set_zero(self):
        x, y = self._xy()
        a = VecVar("a")
        body = [
            Assign(a, VLoad(x, Affine.constant(0))),
            Assign(ScalarVar("r"), VReduceAdd(a)),
            Assign(ScalarVar("e"), VExtract(a, 2)),
            Assign(VecVar("bc"), VBroadcast(BinOp("mul", ScalarVar("r"),
                                                  ScalarVar("e")))),
            Assign(VecVar("st"), VSet((ScalarVar("r"), ScalarVar("e"),
                                       FloatConst(2.5), Load(x,
                                       Affine.constant(7))))),
            VStore(y, Affine.constant(0), VBinOp("add", VecVar("bc"),
                                                 VZero())),
            VStore(y, Affine.constant(4), VecVar("st")),
        ]
        fn = Function("node_kernel", params=[x, y], body=body,
                      vector_width=4)
        assert_backends_match(fn, {"x": np.arange(1.0, 9.0)})

    def test_masked_load_store_at_buffer_edge(self):
        # A 1x6 buffer: a full 4-vector at index 4 would run off the end;
        # the masked forms only touch the active lanes (AVX semantics).
        x = Buffer("x", 1, 6, "in")
        y = Buffer("y", 1, 6, "out")
        mask = (True, True, False, False)
        body = [
            Assign(VecVar("a"), VLoad(x, Affine.constant(4), mask=mask)),
            VStore(y, Affine.constant(4), VecVar("a"), mask=mask),
            VStore(y, Affine.constant(0),
                   VLoad(x, Affine.constant(0))),
        ]
        fn = Function("node_kernel", params=[x, y], body=body,
                      vector_width=4)
        inputs = {"x": np.arange(1.0, 7.0)}
        expected = Interpreter(fn).run(inputs)
        for mode in MODES:
            got = compile_numpy_kernel(fn, mode=mode).run(inputs)
            np.testing.assert_allclose(got["y"], expected["y"], atol=0,
                                       rtol=0)

    def test_masked_store_aliasing_value_reads_before_writes(self):
        """AVX maskstore evaluates its source vector before writing any
        lane; an overlapping masked copy (store at i+1 of a load at i)
        must not observe its own earlier lane writes."""
        b = Buffer("b", 1, 8, "inout")
        mask = (True, True, True, False)
        body = [
            VStore(b, Affine.constant(1),
                   VLoad(b, Affine.constant(0), mask=mask), mask=mask),
        ]
        fn = Function("node_kernel", params=[b], body=body,
                      vector_width=4)
        inputs = {"b": np.arange(1.0, 9.0)}
        expected = Interpreter(fn).run(inputs)
        # the shifted lanes hold the *old* values 1, 2, 3 -- not a cascade
        np.testing.assert_array_equal(
            expected["b"][0], [1.0, 1.0, 2.0, 3.0, 5.0, 6.0, 7.0, 8.0])
        for mode in MODES:
            got = compile_numpy_kernel(fn, mode=mode).run(inputs)
            np.testing.assert_array_equal(got["b"], expected["b"],
                                          err_msg=mode)

    def test_scalar_ops_loops_and_conditionals(self):
        x = Buffer("x", 4, 4, "in")
        y = Buffer("y", 4, 4, "out")
        i, j = "i", "j"
        body = [
            For(i, 0, 4, 1, body=[
                For(j, 0, 4, 1, body=[
                    If(Affine.var(i), "<=", Affine.var(j), then_body=[
                        Store(y, Affine.var(i) * 4 + Affine.var(j),
                              UnOp("sqrt",
                                   BinOp("max",
                                         Load(x, Affine.var(i) * 4
                                              + Affine.var(j)),
                                         FloatConst(0.5)))),
                    ], else_body=[
                        Store(y, Affine.var(i) * 4 + Affine.var(j),
                              UnOp("neg",
                                   BinOp("div",
                                         Load(x, Affine.var(j) * 4
                                              + Affine.var(i)),
                                         FloatConst(2.0)))),
                    ]),
                ]),
            ]),
        ]
        fn = Function("node_kernel", params=[x, y], body=body)
        rng = np.random.default_rng(3)
        assert_backends_match(fn, {"x": rng.standard_normal((4, 4))})


# ---------------------------------------------------------------------------
# Translation artifacts
# ---------------------------------------------------------------------------


class TestTranslation:
    def test_mangling_handles_python_keywords(self):
        assert _mangle("lambda") == "v_lambda"
        assert _mangle("A") == "v_A"
        with pytest.raises(BackendError):
            _mangle("not an identifier")

    def test_gpr_lambda_output_translates(self):
        # The GPR application declares `Sca lambda <Out>` -- a Python
        # keyword as a buffer name.
        case, result = generate("gpr", 4)
        kernel = compile_numpy_kernel(result.function)
        outputs = kernel.run(case.make_inputs(seed=17))
        assert "lambda" in outputs

    def test_unrolled_source_shape(self):
        _, result = generate("potrf", 4)
        source = translate_function(result.function)
        assert f"def {result.function.name}(" in source
        assert ".tolist()" in source
        assert "_p_U[:] = v_U" in source        # writeback of the output
        assert "import numpy" not in source     # pure-Python inner loop

    def test_vectorized_source_shape(self):
        _, result = generate("gemm", 4)
        source = translate_function(result.function, mode="vectorized")
        assert "import numpy as np" in source
        assert ".copy()" in source              # anti-aliasing vector loads
        assert "_maskload(" in source           # masked edge accesses

    def test_unknown_mode_rejected(self):
        _, result = generate("potrf", 4)
        with pytest.raises(BackendError):
            translate_function(result.function, mode="simd")
        with pytest.raises(BackendError):
            compile_numpy_kernel(result.function, mode="simd")

    def test_sources_are_deterministic(self):
        _, result = generate("potrf", 4)
        assert translate_function(result.function) \
            == translate_function(result.function)

    def test_translator_rejects_unknown_statement(self):
        class Bogus:
            pass

        fn = Function("k", params=[Buffer("x", 1, 4, "out")],
                      body=[Bogus()])
        with pytest.raises(BackendError):
            NumPyTranslator(fn).translate()


# ---------------------------------------------------------------------------
# NumPyKernel contract
# ---------------------------------------------------------------------------


class TestNumPyKernel:
    def test_run_matches_interpreter_on_registry_kernels(self):
        for name, size in [("potrf", 4), ("gemm", 4), ("trsm", 4),
                           ("trsyl", 4), ("kf", 4), ("l1a", 4)]:
            case, result = generate(name, size)
            inputs = case.make_inputs(seed=17)
            assert_backends_match(result.function, inputs)

    def test_scalar_kernels_translate_too(self):
        case, result = generate("potrf", 4, vectorize=False)
        assert result.function.vector_width == 1
        assert_backends_match(result.function, case.make_inputs(seed=17))

    def test_inputs_are_not_mutated(self):
        case, result = generate("potrf", 4)
        inputs = case.make_inputs(seed=17)
        pristine = {k: v.copy() for k, v in inputs.items()}
        compile_numpy_kernel(result.function).run(inputs)
        for key in inputs:
            np.testing.assert_array_equal(inputs[key], pristine[key])

    def test_missing_input_raises(self):
        _, result = generate("potrf", 4)
        with pytest.raises(BackendError):
            compile_numpy_kernel(result.function).run({})

    def test_bad_shape_raises(self):
        _, result = generate("potrf", 4)
        with pytest.raises(BackendError):
            compile_numpy_kernel(result.function).run(
                {"S": np.eye(5)})

    def test_time_contract(self):
        case, result = generate("potrf", 4)
        kernel = compile_numpy_kernel(result.function)
        samples = kernel.time(case.make_inputs(seed=17), repeats=3,
                              warmup=1, inner=2)
        assert len(samples) == 3
        assert all(s > 0 for s in samples)

    def test_kernel_is_callable(self):
        case, result = generate("potrf", 4)
        kernel = compile_numpy_kernel(result.function)
        inputs = case.make_inputs(seed=17)
        np.testing.assert_array_equal(kernel(inputs)["U"],
                                      kernel.run(inputs)["U"])


# ---------------------------------------------------------------------------
# Content-addressed source cache
# ---------------------------------------------------------------------------


class TestSourceCache:
    def test_cache_key_persists_source(self, tmp_path):
        _, result = generate("potrf", 4)
        kernel = compile_numpy_kernel(result.function, cache_key="k1",
                                      cache_dir=str(tmp_path))
        assert kernel.source_path is not None
        assert os.path.exists(kernel.source_path)
        with open(kernel.source_path, encoding="utf-8") as handle:
            assert handle.read() == kernel.source

    def test_cached_source_is_authoritative(self, tmp_path):
        """A second call with the same key runs the *stored* source."""
        case, result = generate("potrf", 4)
        first = compile_numpy_kernel(result.function, cache_key="k1",
                                     cache_dir=str(tmp_path))
        doctored = first.source.replace(
            f"def {result.function.name}(",
            "SENTINEL = 1\n\n\ndef " + result.function.name + "(")
        with open(first.source_path, "w", encoding="utf-8") as handle:
            handle.write(doctored)
        second = compile_numpy_kernel(result.function, cache_key="k1",
                                      cache_dir=str(tmp_path))
        assert "SENTINEL" in second.source
        # ... and it still runs.
        second.run(case.make_inputs(seed=17))

    def test_corrupt_cached_source_is_dropped_and_regenerated(self,
                                                              tmp_path):
        case, result = generate("potrf", 4)
        first = compile_numpy_kernel(result.function, cache_key="k1",
                                     cache_dir=str(tmp_path))
        with open(first.source_path, "w", encoding="utf-8") as handle:
            handle.write("this is not python ((((")
        recovered = compile_numpy_kernel(result.function, cache_key="k1",
                                         cache_dir=str(tmp_path))
        assert recovered.source == first.source
        recovered.run(case.make_inputs(seed=17))
        # the regenerated source was re-published to the cache
        with open(first.source_path, encoding="utf-8") as handle:
            assert handle.read() == first.source

    def test_distinct_keys_distinct_files(self, tmp_path):
        _, result = generate("potrf", 4)
        a = compile_numpy_kernel(result.function, cache_key="a",
                                 cache_dir=str(tmp_path))
        b = compile_numpy_kernel(result.function, cache_key="b",
                                 cache_dir=str(tmp_path))
        assert a.source_path != b.source_path

    def test_modes_do_not_collide_in_cache(self, tmp_path):
        _, result = generate("potrf", 4)
        a = compile_numpy_kernel(result.function, cache_key="k",
                                 cache_dir=str(tmp_path))
        b = compile_numpy_kernel(result.function, cache_key="k",
                                 cache_dir=str(tmp_path),
                                 mode="vectorized")
        assert a.source_path != b.source_path
        assert a.source != b.source


# ---------------------------------------------------------------------------
# Executor resolution + layer integration
# ---------------------------------------------------------------------------


class TestExecutorIntegration:
    def test_make_executor_backends(self):
        _, result = generate("potrf", 4)
        assert isinstance(make_executor(result.function, "numpy"),
                          NumPyKernel)
        assert isinstance(make_executor(result.function, "interpreter"),
                          InterpreterKernel)
        with pytest.raises(BackendError):
            make_executor(result.function, "fortran")

    def test_make_executor_auto(self):
        _, result = generate("potrf", 4)
        kernel = make_executor(result.function, "auto",
                               c_code=result.c_code)
        expected = "CompiledKernel" if compiler_available() \
            else "NumPyKernel"
        assert type(kernel).__name__ == expected

    def test_executors_constant_lists_backends(self):
        assert set(EXECUTORS) == {"compiled", "numpy", "numpy-vectorized",
                                  "interpreter"}

    def test_generation_result_run_numpy(self):
        case, result = generate("potrf", 4)
        inputs = case.make_inputs(seed=17)
        np.testing.assert_allclose(result.run_numpy(inputs)["U"],
                                   result.run(inputs)["U"], atol=1e-12,
                                   rtol=0)

    def test_service_response_kernel_without_compiler(self, tmp_path,
                                                      monkeypatch):
        from repro.service import DiskKernelStore, KernelService, \
            make_request
        import repro.backend as backend_pkg

        service = KernelService(store=DiskKernelStore(
            root=str(tmp_path / "kernels")))
        response = service.generate(make_request("potrf:4"))
        monkeypatch.setenv("REPRO_NUMPY_CACHE", str(tmp_path / "numpy"))
        monkeypatch.setattr(backend_pkg, "compiler_available",
                            lambda: False)
        kernel = response.kernel()          # auto, no $CC -> numpy
        assert isinstance(kernel, NumPyKernel)
        case = make_case("potrf", 4)
        outputs = kernel.run(case.make_inputs(seed=17))
        oracle = case.reference_outputs(case.make_inputs(seed=17))
        np.testing.assert_allclose(np.triu(outputs["U"]),
                                   np.triu(oracle["U"]), atol=1e-7)
        # content-addressed by the response key
        assert os.path.dirname(kernel.source_path) == str(
            tmp_path / "numpy")

    def test_interpreter_kernel_time(self):
        _, result = generate("potrf", 4)
        kernel = InterpreterKernel(result.function)
        case = make_case("potrf", 4)
        samples = kernel.time(case.make_inputs(seed=17), repeats=2,
                              warmup=1)
        assert len(samples) == 2 and all(s > 0 for s in samples)


class TestHarnessExecutor:
    def test_measure_slingen_numpy_executor(self):
        from repro.bench.harness import measure_slingen

        case = make_case("potrf", 4)
        generated, performance, correct = measure_slingen(
            case, validate=True, executor="numpy")
        assert correct is True
        assert np.isfinite(performance) and performance > 0
        # empirically measured, so distinct from the model estimate
        assert performance != generated.performance.flops_per_cycle

    def test_run_series_numpy_executor(self):
        from repro.bench.harness import run_series

        series = run_series("gemm", [4], validate=True, executor="numpy",
                            baselines=[])
        point = series.points[0]
        assert point.correct is True
        assert np.isfinite(point.performance["slingen"])


class TestNumPyMeasurer:
    def test_measure_returns_seconds(self):
        from repro.tuning.measure import NumPyMeasurer

        _, result = generate("potrf", 4)
        measurement = NumPyMeasurer(repeats=3, warmup=1, inner=2) \
            .measure(result.function)
        assert measurement.backend == "numpy"
        assert measurement.unit == "seconds"
        assert measurement.score > 0
        assert len(measurement.samples) == 3

    def test_invalid_parameters_rejected(self):
        from repro.errors import MeasurementError
        from repro.tuning.measure import NumPyMeasurer

        with pytest.raises(MeasurementError):
            NumPyMeasurer(repeats=0)

    def test_listed_in_measurer_names(self):
        from repro.tuning.measure import measurer_names

        assert "numpy" in measurer_names()

    def test_tune_with_numpy_backend(self, tmp_path):
        from repro.tuning import Autotuner, TuningDB

        db = TuningDB(root=str(tmp_path))
        record = Autotuner(db=db, measurer="numpy", strategy="hill-climb",
                           budget=3).tune_case(make_case("potrf", 4))
        assert record.backend == "numpy"
        assert record.unit == "seconds"
        assert record.evaluations >= 1


# ---------------------------------------------------------------------------
# The crosscheck CLI (the CI differential job's entry point)
# ---------------------------------------------------------------------------


class TestBackendCLI:
    def test_crosscheck_agrees(self, capsys):
        from repro.backend.__main__ import main

        assert main(["crosscheck", "potrf:4", "gemm:4",
                     "--backends", "interpreter,numpy"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "DISAGREE" not in out

    def test_crosscheck_rejects_bad_backend(self):
        from repro.backend.__main__ import main

        assert main(["crosscheck", "potrf:4", "--backends",
                     "interpreter,fortran"]) == 2
        assert main(["crosscheck", "potrf:4", "--backends",
                     "numpy"]) == 2

    def test_emit_numpy_source(self, capsys):
        from repro.backend.__main__ import main

        assert main(["emit", "potrf:4"]) == 0
        assert "def potrf_4_kernel(" in capsys.readouterr().out

    def test_emit_c_source(self, capsys):
        from repro.backend.__main__ import main

        assert main(["emit", "potrf:4", "--format", "c"]) == 0
        assert "void potrf_4_kernel(" in capsys.readouterr().out


class TestServiceRunCommand:
    def test_run_executes_workload(self, tmp_path, capsys):
        from repro.service.__main__ import main

        assert main(["--cache-dir", str(tmp_path), "run", "potrf:4",
                     "--backend", "numpy", "--repeats", "2"]) == 0
        out = capsys.readouterr().out
        assert "NumPyKernel" in out and "ok" in out
