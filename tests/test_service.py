"""Tests for the kernel service: keys, store, service front-end, registry,
CLI, and the supporting satellite changes (Options.validate, CC handling)."""

import json
import os
import pickle
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.applications import make_case
from repro.errors import ConfigurationError, ServiceError
from repro.machine.microarch import HASWELL, default_machine
from repro.service import (DiskKernelStore, GenerationRequest, KernelService,
                           MemoryKernelStore, cache_key, canonical_program,
                           make_request, parse_spec, sweep_requests,
                           workload_names)
from repro.slingen import Options, SLinGen
from repro.slingen.generator import GenerationResult

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


def _options():
    return Options(max_variants=4, annotate_code=False)


def _result_for(spec="potrf:4", options=None):
    request = make_request(spec, options=options or _options())
    return SLinGen(request.options).generate_result(
        request.program, nominal_flops=request.nominal_flops)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------


class TestKeys:
    def test_key_is_deterministic_in_process(self):
        a = make_request("potrf:8")
        b = make_request("potrf:8")
        key_a = cache_key(a.program, _options(), default_machine(),
                          nominal_flops=a.nominal_flops)
        key_b = cache_key(b.program, _options(), default_machine(),
                          nominal_flops=b.nominal_flops)
        assert key_a == key_b
        assert len(key_a) == 64

    def test_key_stable_across_processes(self):
        request = make_request("trtri:8")
        local = cache_key(request.program, _options(), default_machine(),
                          nominal_flops=request.nominal_flops)
        script = (
            "from repro.service import cache_key, make_request\n"
            "from repro.slingen import Options\n"
            "from repro.machine.microarch import default_machine\n"
            "r = make_request('trtri:8',"
            " options=Options(max_variants=4, annotate_code=False))\n"
            "print(cache_key(r.program, r.options, default_machine(),"
            " nominal_flops=r.nominal_flops))\n")
        env = dict(os.environ, PYTHONPATH=SRC_DIR, PYTHONHASHSEED="99")
        output = subprocess.run([sys.executable, "-c", script], env=env,
                                capture_output=True, text=True, check=True)
        assert output.stdout.strip() == local

    def test_key_sensitive_to_each_component(self):
        request = make_request("potrf:8")
        base = cache_key(request.program, _options(), default_machine(),
                         nominal_flops=request.nominal_flops)
        other_program = make_request("potrf:12")
        assert cache_key(other_program.program, _options(), default_machine(),
                         nominal_flops=other_program.nominal_flops) != base
        assert cache_key(request.program, Options(vectorize=False),
                         default_machine(),
                         nominal_flops=request.nominal_flops) != base
        assert cache_key(request.program, _options(), HASWELL,
                         nominal_flops=request.nominal_flops) != base
        assert cache_key(request.program, _options(), default_machine(),
                         nominal_flops=None) != base

    def test_source_and_ir_agree(self):
        source = """
        Mat A(n, n) <In>;
        Vec x(n) <In>;
        Vec y(n) <Out>;
        y = A * x;
        """
        from repro.la import parse_program
        program = parse_program(source, {"n": 8}, name="gemv")
        from_ir = cache_key(program, _options())
        # Text requests are parsed before canonicalization; identical source
        # reaches the same canonical program apart from the default name.
        assert canonical_program(program).startswith("program(gemv)")
        assert from_ir == cache_key(program, _options())


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


class TestDiskStore:
    def test_hit_after_miss_round_trip(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        result = _result_for("potrf:4")
        assert store.get("0" * 64) is None
        store.put("0" * 64, result)
        loaded = store.get("0" * 64)
        assert loaded is not None
        assert loaded.c_code == result.c_code
        assert loaded.performance.cycles == result.performance.cycles
        assert loaded.variant_label == result.variant_label

    def test_persists_across_instances_and_runs_kernel(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        result = _result_for("potrf:4")
        store.put("a" * 64, result)

        reopened = DiskKernelStore(root=str(tmp_path))
        loaded = reopened.get("a" * 64)
        assert loaded is not None
        case = make_case("potrf", 4)
        inputs = case.make_inputs(seed=3)
        outputs = loaded.run(inputs)
        expected = case.reference_outputs(inputs)
        assert np.allclose(np.triu(outputs["U"]), np.triu(expected["U"]),
                           atol=1e-7)

    def test_corrupted_payload_recovers_as_miss(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        key = "b" * 64
        store.put(key, _result_for("potrf:4"))
        store._hot.clear()  # force the disk path
        payload = os.path.join(store._entry_dir(key), "payload.pkl")
        with open(payload, "wb") as handle:
            handle.write(b"\x80\x04 this is not a pickle")
        assert store.get(key) is None
        assert store.corrupt_dropped == 1
        assert key not in store.keys()  # quarantined

    def test_corrupted_meta_recovers_as_miss(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        key = "c" * 64
        store.put(key, _result_for("potrf:4"))
        store._hot.clear()
        meta = os.path.join(store._entry_dir(key), "meta.json")
        with open(meta, "w", encoding="utf-8") as handle:
            handle.write("{truncated")
        assert store.get(key) is None
        assert key not in store.keys()

    def test_lru_eviction_bound(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path), max_entries=3,
                                hot_capacity=0)
        result = _result_for("potrf:4")
        keys = [format(i, "064x") for i in range(5)]
        base = time.time() - 1000
        for i, key in enumerate(keys):
            store.put(key, result)
            # mtime resolution can be coarse; force a distinct access order
            # (in the past, so the entry being written stays newest).
            meta = os.path.join(store._entry_dir(key), "meta.json")
            os.utime(meta, (base + i, base + i))
        remaining = store.keys()
        assert len(remaining) <= 3
        assert keys[-1] in remaining       # newest survives
        assert keys[0] not in remaining    # oldest evicted
        assert store.evictions >= 2

    def test_max_bytes_eviction(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path), max_bytes=1,
                                hot_capacity=0)
        store.put("d" * 64, _result_for("potrf:4"))
        store.put("e" * 64, _result_for("potrf:4"))
        # Every put exceeds one byte, so at most the newest entry survives.
        assert len(store.keys()) <= 1

    def test_metadata_and_stats(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        store.put("f" * 64, _result_for("potrf:4"), meta={"label": "potrf:4"})
        meta = store.metadata("f" * 64)
        assert meta["label"] == "potrf:4"
        assert meta["program"] == "potrf_4"
        assert meta["payload_bytes"] > 0
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        # kernel.c is greppable on disk
        code_path = os.path.join(store._entry_dir("f" * 64), "kernel.c")
        assert "void" in open(code_path).read()

    def test_purge(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        store.put("1" * 64, _result_for("potrf:4"))
        assert store.purge() == 1
        assert store.keys() == []


class TestMemoryStore:
    def test_round_trip_and_lru(self):
        store = MemoryKernelStore(max_entries=2)
        result = _result_for("potrf:4")
        store.put("a", result)
        store.put("b", result)
        assert store.get("a") is result    # refresh "a"
        store.put("c", result)             # evicts "b"
        assert store.get("b") is None
        assert store.get("a") is result
        assert store.get("c") is result
        assert store.evictions == 1


# ---------------------------------------------------------------------------
# Service
# ---------------------------------------------------------------------------


class TestKernelService:
    def test_second_generate_is_hit_without_stage_1_3(self, tmp_path):
        service = KernelService(store=DiskKernelStore(root=str(tmp_path)),
                                options=_options())
        request = make_request("potrf:12", options=_options())

        t0 = time.perf_counter()
        cold = service.generate(request)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = service.generate(request)
        warm_s = time.perf_counter() - t0

        assert not cold.cache_hit and warm.cache_hit
        assert service.stats.hits == 1 and service.stats.misses == 1
        assert warm.result.c_code == cold.result.c_code
        assert warm.result.performance.cycles == cold.result.performance.cycles
        # The warm path serves from the store without re-running Stage 1-3.
        assert cold_s >= 10 * warm_s, \
            f"warm path only {cold_s / warm_s:.1f}x faster"

    def test_hit_survives_process_restart_simulation(self, tmp_path):
        request = make_request("trtri:4", options=_options())
        first = KernelService(store=DiskKernelStore(root=str(tmp_path)),
                              options=_options())
        assert not first.generate(request).cache_hit
        # A fresh service over the same root models a new process.
        second = KernelService(store=DiskKernelStore(root=str(tmp_path)),
                               options=_options())
        response = second.generate(request)
        assert response.cache_hit

    def test_generate_many_matches_serial(self, tmp_path):
        specs = ["potrf:4", "potrf:8", "trtri:4", "trsyl:4", "gpr:4"]
        service = KernelService(store=DiskKernelStore(root=str(tmp_path)),
                                options=_options(), max_workers=4)
        requests = [make_request(s, options=_options()) for s in specs]
        parallel = service.generate_many(requests, parallel=True)

        for spec, response in zip(specs, parallel):
            serial = _result_for(spec)
            assert response.result.c_code == serial.c_code, spec
            assert response.result.performance.cycles \
                == serial.performance.cycles, spec
            assert response.result.variant_label == serial.variant_label, spec
        assert [r.label for r in parallel] == specs  # request order kept

    def test_generate_many_coalesces_duplicates(self):
        service = KernelService(store=MemoryKernelStore(),
                                options=_options())
        request = make_request("potrf:4", options=_options())
        responses = service.generate_many([request, request, request])
        assert len(responses) == 3
        assert service.stats.coalesced == 2
        assert len({r.result.c_code for r in responses}) == 1

    def test_accepts_bare_program(self):
        service = KernelService(store=MemoryKernelStore(),
                                options=_options())
        case = make_case("potrf", 4)
        response = service.generate(case.program)
        assert response.label == "potrf_4"

    def test_rejects_bad_executor(self):
        with pytest.raises(ServiceError):
            KernelService(store=MemoryKernelStore(), executor="fork-bomb")

    def test_warm_uses_registry(self, tmp_path):
        service = KernelService(store=DiskKernelStore(root=str(tmp_path)),
                                options=_options())
        summary = service.warm(["potrf:4", "trtri:4"])
        assert summary["warmed"] == 2 and summary["misses"] == 2
        summary = service.warm(["potrf:4", "trtri:4"])
        assert summary["hits"] == 2

    def test_generator_store_integration(self, tmp_path):
        """SLinGen itself can be pointed at a store (variant reuse layer)."""
        store = DiskKernelStore(root=str(tmp_path))
        generator = SLinGen(_options(), store=store)
        case = make_case("potrf", 4)
        first = generator.generate(case.program,
                                   nominal_flops=case.nominal_flops)
        assert len(store) == 1
        second = generator.generate(case.program,
                                    nominal_flops=case.nominal_flops)
        assert second.c_code == first.c_code
        assert store.hot_hits + store.disk_hits >= 1


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------


class TestHarnessIntegration:
    def test_run_series_with_service_matches_direct(self):
        from repro.bench import generator_options, run_series
        service = KernelService(store=MemoryKernelStore())
        sizes = [4, 8]
        with_service = run_series("potrf", sizes, service=service,
                                  options=generator_options(),
                                  baselines=[])
        direct = run_series("potrf", sizes, options=generator_options(),
                            baselines=[])
        assert [p.performance["slingen"] for p in with_service.points] \
            == [p.performance["slingen"] for p in direct.points]
        # Rerunning the series is now pure cache hits.
        before = service.stats.hits
        run_series("potrf", sizes, service=service,
                   options=generator_options(), baselines=[])
        assert service.stats.hits >= before + len(sizes)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_parse_spec_forms(self):
        assert parse_spec("potrf:12").size == 12
        spec = parse_spec("kf:8x4")
        assert (spec.name, spec.size, spec.k) == ("kf", 8, 4)
        assert spec.label == "kf:8x4"

    def test_parse_spec_errors(self):
        with pytest.raises(ServiceError):
            parse_spec("nonesuch:4")
        with pytest.raises(ServiceError):
            parse_spec("potrf")
        with pytest.raises(ServiceError):
            parse_spec("potrf:banana")

    def test_sweep_requests_expands_and_dedupes(self):
        requests = sweep_requests(["potrf", "potrf:4"])
        labels = [r.label for r in requests]
        assert len(labels) == len(set(labels))
        assert "potrf:4" in labels
        assert all(label.startswith("potrf:") for label in labels)

    def test_all_workloads_resolve(self):
        for name in workload_names():
            request = make_request(f"{name}:4")
            assert request.program is not None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCLI:
    def _run(self, tmp_path, *argv):
        from repro.service.__main__ import main
        return main(["--cache-dir", str(tmp_path)] + list(argv))

    def test_warm_query_ls_purge(self, tmp_path, capsys):
        assert self._run(tmp_path, "warm", "potrf:4") == 0
        out = capsys.readouterr().out
        assert "MISS" in out and "1 entries" not in out

        assert self._run(tmp_path, "query", "potrf:4") == 0
        assert "hit" in capsys.readouterr().out

        assert self._run(tmp_path, "query", "potrf:8") == 1  # miss
        capsys.readouterr()

        assert self._run(tmp_path, "ls") == 0
        assert "potrf:4" in capsys.readouterr().out

        assert self._run(tmp_path, "stats") == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1

        assert self._run(tmp_path, "purge", "--yes") == 0
        assert "purged 1" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        result = subprocess.run(
            [sys.executable, "-m", "repro.service", "--cache-dir",
             str(tmp_path), "workloads"],
            env=env, capture_output=True, text=True)
        assert result.returncode == 0
        assert "potrf" in result.stdout


# ---------------------------------------------------------------------------
# Satellites: Options.validate and GenerationResult purity
# ---------------------------------------------------------------------------


class TestOptionsValidate:
    def test_valid_options_pass_and_chain(self):
        options = Options()
        assert options.validate() is options

    @pytest.mark.parametrize("kwargs", [
        {"vector_width": 0},
        {"vector_width": -4},
        {"block_size": 0},
        {"max_variants": 0},
        {"unroll_trip_count": 0},
        {"unroll_body_limit": -1},
        {"function_name": "not a C name"},
    ])
    def test_invalid_options_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            Options(**kwargs).validate()

    def test_generate_rejects_invalid_options_early(self):
        case = make_case("potrf", 4)
        generator = SLinGen(Options(max_variants=0))
        with pytest.raises(ConfigurationError):
            generator.generate(case.program)


class TestGenerationResult:
    def test_result_pickles_and_still_runs(self):
        case = make_case("potrf", 4)
        result = SLinGen(_options()).generate_result(
            case.program, nominal_flops=case.nominal_flops)
        clone = pickle.loads(pickle.dumps(result))
        assert isinstance(clone, GenerationResult)
        inputs = case.make_inputs(seed=11)
        assert np.allclose(
            np.triu(clone.run(inputs)["U"]),
            np.triu(result.run(inputs)["U"]))

    def test_generate_wraps_result(self):
        case = make_case("potrf", 4)
        generator = SLinGen(_options())
        generated = generator.generate(case.program,
                                       nominal_flops=case.nominal_flops)
        assert generated.program is case.program
        assert generated.summary()["program"] == "potrf_4"


class TestStatsAccounting:
    def test_mixed_batch_hit_latency_not_charged_generation_time(self):
        service = KernelService(store=MemoryKernelStore(), options=_options())
        warm_req = make_request("potrf:4", options=_options())
        service.generate(warm_req)                     # prime one entry
        cold_req = make_request("trlya:12", options=_options())
        responses = service.generate_many([warm_req, cold_req])
        hit, miss = responses
        assert hit.cache_hit and not miss.cache_hit
        # The hit resolved during the first store pass; its latency must not
        # include the miss's generation time.
        assert hit.latency_s < miss.latency_s / 10

    def test_errors_counter_increments_on_failure(self, monkeypatch):
        from repro.service import service as service_mod
        service = KernelService(store=MemoryKernelStore(), options=_options())

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic generation failure")

        monkeypatch.setattr(service_mod, "_generate_payload", boom)
        with pytest.raises(RuntimeError):
            service.generate(make_request("potrf:4", options=_options()))
        assert service.stats.errors == 1
        with pytest.raises(RuntimeError):
            service.generate_many(
                [make_request("trtri:4", options=_options())],
                parallel=False)
        assert service.stats.errors == 2


# ---------------------------------------------------------------------------
# Single-flight coalescing (concurrent generate() races)
# ---------------------------------------------------------------------------


class TestSingleFlight:
    def _slow_counting_payload(self, monkeypatch, delay_s=0.05):
        """Instrument _generate_payload with a call counter and a delay
        wide enough that racing threads genuinely overlap."""
        import threading

        from repro.service import service as service_mod

        real = service_mod._generate_payload
        calls = []
        lock = threading.Lock()

        def counting(*args, **kwargs):
            with lock:
                calls.append(threading.get_ident())
            time.sleep(delay_s)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_mod, "_generate_payload", counting)
        return calls

    def test_hammering_one_key_generates_exactly_once(self, monkeypatch):
        import threading

        calls = self._slow_counting_payload(monkeypatch)
        service = KernelService(store=MemoryKernelStore(), options=_options())
        clients = 16
        barrier = threading.Barrier(clients)
        responses = [None] * clients

        def client(idx):
            request = make_request("potrf:4", options=_options())
            barrier.wait()
            responses[idx] = service.generate(request)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(calls) == 1
        assert service.stats.generations == 1
        # Every thread got the identical result object via the in-flight
        # future (not a reload), and followers are marked coalesced.
        leader_result = responses[0].result
        assert all(r.result is leader_result for r in responses)
        flags = sorted(r.coalesced for r in responses)
        assert flags == [False] + [True] * (clients - 1)
        assert all(not r.cache_hit for r in responses)
        snap = service.stats.snapshot()
        assert snap["requests"] == snap["hits"] + snap["misses"]
        assert snap["misses"] == snap["generations"] + snap["coalesced"]
        assert snap["coalesced"] == clients - 1

    def test_disabled_single_flight_duplicates_generations(self, monkeypatch):
        import threading

        calls = self._slow_counting_payload(monkeypatch)
        service = KernelService(store=MemoryKernelStore(), options=_options(),
                                single_flight=False)
        clients = 4
        barrier = threading.Barrier(clients)

        def client():
            request = make_request("potrf:4", options=_options())
            barrier.wait()
            service.generate(request)

        threads = [threading.Thread(target=client) for _ in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All threads overlap inside the slow payload, so every one of them
        # misses and generates independently.
        assert len(calls) == clients
        assert service.stats.generations == clients

    def test_leader_failure_propagates_to_all_waiters(self, monkeypatch):
        import threading

        from repro.service import service as service_mod

        started = threading.Event()

        def boom(*args, **kwargs):
            started.set()
            time.sleep(0.05)
            raise RuntimeError("synthetic generation failure")

        monkeypatch.setattr(service_mod, "_generate_payload", boom)
        service = KernelService(store=MemoryKernelStore(), options=_options())
        clients = 6
        barrier = threading.Barrier(clients)
        outcomes = [None] * clients

        def client(idx):
            request = make_request("potrf:4", options=_options())
            barrier.wait()
            try:
                service.generate(request)
            except RuntimeError as exc:
                outcomes[idx] = str(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(o == "synthetic generation failure" for o in outcomes)
        assert service.stats.errors == clients
        # The failed flight retired its key: a later request starts fresh.
        assert len(service._flight) == 0

    def test_sequential_requests_do_not_coalesce(self):
        service = KernelService(store=MemoryKernelStore(), options=_options())
        first = service.generate(make_request("potrf:4", options=_options()))
        second = service.generate(make_request("potrf:4", options=_options()))
        assert not first.coalesced and not first.cache_hit
        assert not second.coalesced and second.cache_hit


# ---------------------------------------------------------------------------
# Sharded disk store: migration, per-shard accounting
# ---------------------------------------------------------------------------


class TestShardedStore:
    def test_layout_is_two_level_fanout(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        result = _result_for("potrf:4")
        key = "ab" + "0" * 62
        store.put(key, result)
        assert os.path.isdir(tmp_path / "ab" / key)
        assert store.get(key) is not None

    def test_flat_store_migrates_transparently(self, tmp_path):
        # Write entries through a sharded store, then flatten them to the
        # legacy layout by hand and re-open: the constructor must migrate.
        store = DiskKernelStore(root=str(tmp_path))
        result = _result_for("potrf:4")
        keys = ["aa" + "1" * 62, "bb" + "2" * 62]
        for key in keys:
            store.put(key, result)
        import shutil
        for key in keys:
            shutil.move(str(tmp_path / key[:2] / key), str(tmp_path / key))
            shutil.rmtree(str(tmp_path / key[:2]))
        assert sorted(os.listdir(tmp_path)) == sorted(keys)

        reopened = DiskKernelStore(root=str(tmp_path))
        assert reopened.migrated == 2
        assert sorted(reopened.keys()) == sorted(keys)
        for key in keys:
            assert not os.path.exists(tmp_path / key)
            assert os.path.isdir(tmp_path / key[:2] / key)
            loaded = reopened.get(key)
            assert loaded is not None
            assert loaded.c_code == result.c_code
        assert reopened.stats()["migrated"] == 2

    def test_migration_leaves_non_key_directories_alone(self, tmp_path):
        # Only directories named by a full 64-hex key are flat entries;
        # a user's backup dir must stay visible at the root, not be
        # relocated somewhere the sharded lookups never list.
        backup = tmp_path / "OLD_potrf"
        backup.mkdir()
        (backup / "meta.json").write_text("{}")
        store = DiskKernelStore(root=str(tmp_path))
        assert store.migrated == 0
        assert backup.is_dir()
        assert not (tmp_path / "OL").exists()

    def test_purge_spares_non_key_directories(self, tmp_path):
        foreign = tmp_path / "OLD_potrf"
        foreign.mkdir()
        (foreign / "meta.json").write_text("{}")
        store = DiskKernelStore(root=str(tmp_path))
        store.put("ab" + "0" * 62, _result_for("potrf:4"))
        assert store.purge() == 1
        assert store.keys() == []
        assert not (tmp_path / "ab").exists()
        assert foreign.is_dir()         # same contract as migration

    def test_migration_ignores_uncommitted_debris(self, tmp_path):
        debris = tmp_path / ("cc" + "3" * 62)
        debris.mkdir()
        (debris / "payload.pkl").write_bytes(b"torn write, no meta")
        store = DiskKernelStore(root=str(tmp_path))
        assert store.migrated == 0
        assert store.keys() == []
        assert debris.exists()          # left in place, never listed

    def test_corrupt_entry_recovers_under_sharded_layout(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path), hot_capacity=0)
        result = _result_for("potrf:4")
        key = "dd" + "4" * 62
        store.put(key, result)
        payload = tmp_path / "dd" / key / "payload.pkl"
        payload.write_bytes(b"\x80corrupt")
        assert store.get(key) is None
        assert store.corrupt_dropped == 1
        assert not (tmp_path / "dd" / key).exists()   # quarantined
        # The shard directory itself survives for its siblings.
        store.put(key, result)
        assert store.get(key) is not None

    def test_shard_stats_accounting(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path))
        result = _result_for("potrf:4")
        store.put("ee" + "5" * 62, result)
        store.put("ee" + "6" * 62, result)
        store.put("ff" + "7" * 62, result)
        shards = store.shard_stats()
        assert set(shards) == {"ee", "ff"}
        assert shards["ee"]["entries"] == 2
        assert shards["ff"]["entries"] == 1
        assert shards["ee"]["bytes"] > 0
        assert shards["ee"]["lru_age_s"] >= 0.0
        assert store.stats()["shards"] == 2

    def test_eviction_order_is_stable_under_frozen_mtimes(self, tmp_path):
        # On coarse-mtime filesystems (1 s resolution) same-second
        # entries all carry the same LRU stamp; eviction order must then
        # fall back to key order, not directory-listing order.
        store = DiskKernelStore(root=str(tmp_path), max_entries=None,
                                hot_capacity=0)
        result = _result_for("potrf:4")
        keys = ["cc" + "3" * 62, "aa" + "1" * 62, "bb" + "2" * 62]
        for key in keys:
            store.put(key, result)
        frozen = 1_700_000_000
        for key in keys:
            meta = os.path.join(store._entry_dir(key),
                                DiskKernelStore.META_NAME)
            os.utime(meta, (frozen, frozen))
        store.max_entries = 2
        store._evict()
        # the lexicographically smallest key is the deterministic victim
        assert sorted(store.keys()) == sorted(keys[0:1] + keys[2:3])
        assert store.evictions_by_shard == {"aa": 1}
        # shard_stats reports the same deterministic LRU candidate
        stats = store.shard_stats()
        assert stats["bb"]["lru_key"] == keys[2]
        assert stats["cc"]["lru_key"] == keys[0]

    def test_eviction_is_accounted_per_shard(self, tmp_path):
        store = DiskKernelStore(root=str(tmp_path), max_entries=2,
                                hot_capacity=0)
        result = _result_for("potrf:4")
        old = "aa" + "8" * 62
        store.put(old, result)
        time.sleep(0.05)                # age the first entry's LRU clock
        store.put("bb" + "9" * 62, result)
        store.put("cc" + "a" * 62, result)
        assert store.evictions == 1
        assert store.evictions_by_shard == {"aa": 1}
        assert old not in store.keys()
        assert store.shard_stats()["aa"]["evictions"] == 1
