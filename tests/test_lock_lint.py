"""AST lint: shared-counter mutations must hold the owning lock.

``ServiceStats``, ``PhaseCache`` and ``PersistentPhaseStore`` are
mutated concurrently by the threaded service, and the analysis gate's
process-wide ``_STATS`` dict by every verifying thread.  Each owns a
lock; this lint parses the source and asserts every attribute (or
``_STATS[...]``) mutation outside ``__init__`` is lexically inside a
``with <lock>:`` block, so an unguarded ``self.hits += 1`` cannot slip
in during a refactor and silently drop counts under contention.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Tuple

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: (relative source file, class) pairs whose instance-attribute
#: mutations must happen under ``with self._lock:``.
LOCKED_CLASSES = [
    ("service/service.py", "ServiceStats"),
    ("pipeline/cache.py", "PhaseCache"),
    ("pipeline/cache.py", "PersistentPhaseStore"),
]


def _is_self_lock(expr: ast.expr) -> bool:
    return (isinstance(expr, ast.Attribute) and expr.attr == "_lock"
            and isinstance(expr.value, ast.Name) and expr.value.id == "self")


def _is_stats_lock(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "_STATS_LOCK"


def _mutation_targets(node: ast.stmt) -> List[ast.expr]:
    if isinstance(node, ast.AugAssign):
        return [node.target]
    if isinstance(node, ast.Assign):
        return list(node.targets)
    return []


def _unlocked_mutations(body: ast.stmt, is_lock, is_target
                        ) -> List[Tuple[int, str]]:
    """``(line, text)`` of every matching mutation not under the lock."""
    bad: List[Tuple[int, str]] = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            locked = locked or any(is_lock(item.context_expr)
                                   for item in node.items)
        if not locked and isinstance(node, ast.stmt):
            for target in _mutation_targets(node):
                if is_target(target):
                    bad.append((node.lineno, ast.unparse(node)))
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    visit(body, False)
    return bad


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    raise AssertionError(f"class {name} not found")


def test_locked_classes_mutate_under_their_lock():
    def is_self_attr(target: ast.expr) -> bool:
        return (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self")

    violations = []
    for rel, name in LOCKED_CLASSES:
        tree = ast.parse((SRC / rel).read_text())
        cls = _class_def(tree, name)
        assert "_lock" in ast.unparse(cls), f"{name} defines no _lock"
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef) \
                    or method.name == "__init__" \
                    or method.name.endswith("_locked"):
                # ``*_locked`` methods run with the lock already held by
                # their caller -- the suffix is the contract.
                continue
            for line, text in _unlocked_mutations(
                    method, _is_self_lock, is_self_attr):
                violations.append(f"{rel}:{line} {name}.{method.name}: "
                                  f"{text}")
    assert not violations, \
        "attribute mutations outside `with self._lock:`:\n" \
        + "\n".join(violations)


def test_analysis_stats_mutations_hold_stats_lock():
    def is_stats_subscript(target: ast.expr) -> bool:
        return (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == "_STATS")

    tree = ast.parse((SRC / "analysis/verifier.py").read_text())
    violations = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            for line, text in _unlocked_mutations(
                    node, _is_stats_lock, is_stats_subscript):
                violations.append(f"analysis/verifier.py:{line} "
                                  f"{node.name}: {text}")
    assert not violations, \
        "_STATS mutations outside `with _STATS_LOCK:`:\n" \
        + "\n".join(violations)
