"""The committed fuzz corpus replays green, and the fuzzer is deterministic.

Every file under ``tests/fuzz_corpus/`` is the minimized repro of a bug
the differential fuzzer found (and this repository fixed): each one runs
through the full pipeline and every execution backend and must agree --
a red test here is a regression of a previously fixed bug.

The determinism tests pin the property CI relies on: a fuzz seed is a
complete, reproducible description of a case.
"""

import os

import pytest

from repro.fuzz import entry_passes, load_corpus, replay_entry, sample_case

CORPUS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "fuzz_corpus")

ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    # the PR that introduced the fuzzer committed the repros of every
    # bug it found; the corpus only ever grows
    assert len(ENTRIES) >= 5


@pytest.mark.parametrize(
    "entry", ENTRIES,
    ids=[f"{e.entry_id}-{e.case.program.name}" for e in ENTRIES])
def test_corpus_entry_replays_green(entry):
    # regular entries document fixed bugs and must replay ok; witness
    # entries (with an ``expect`` signature) document that the oracle
    # still refutes a known-unsound configuration and must keep failing
    # exactly the documented way
    result = replay_entry(entry)
    assert entry_passes(entry, result), (
        f"corpus expectation broken ({entry.note}): expected "
        f"{entry.expect or ['ok']}, got {result.describe()}")


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("seed", [0, 1, 17, 99, 12345])
    def test_same_seed_same_case(self, seed):
        first = sample_case(seed)
        second = sample_case(seed)
        assert first.to_json() == second.to_json()
        assert first.program.source() == second.program.source()
        assert first.options == second.options
        assert first.input_seed == second.input_seed

    def test_different_seeds_differ(self):
        # not a tautology: a broken rng plumbing would collapse all
        # seeds onto one case
        sources = {sample_case(seed).program.source()
                   for seed in range(10)}
        assert len(sources) > 1
