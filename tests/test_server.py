"""Tests for the HTTP serving layer: a live ``ThreadingHTTPServer`` on an
ephemeral port, exercised through :class:`ServiceClient` and raw urllib."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.service import (KernelServer, KernelService, MemoryKernelStore,
                           ServiceClient)
from repro.slingen import Options


def _options():
    return Options(max_variants=4, annotate_code=False)


@pytest.fixture()
def server():
    service = KernelService(store=MemoryKernelStore(), options=_options())
    with KernelServer(service, port=0, quiet=True) as live:
        yield live


@pytest.fixture()
def client(server):
    return ServiceClient(server.url, timeout=60.0)


class TestEndpoints:
    def test_healthz(self, client):
        doc = client.wait_healthy(timeout=10)
        assert doc["status"] == "ok"
        assert doc["uptime_s"] >= 0
        assert doc["max_inflight"] == 8

    def test_uptime_uses_the_monotonic_clock(self, server, client):
        # An NTP step of the wall clock must not make uptime jump or go
        # negative: started_at has to come from time.monotonic() (whose
        # epoch is boot-ish, far away from time.time()'s 1970 epoch).
        import time as time_mod
        assert abs(time_mod.monotonic() - server.started_at) < 3600
        assert abs(time_mod.time() - server.started_at) > 3600 * 24 * 365
        doc = client.healthz()
        assert 0 <= doc["uptime_s"] < 3600

    def test_generate_miss_then_hit(self, client):
        cold = client.generate(spec="potrf:4")
        assert not cold["cache_hit"]
        assert len(cold["key"]) == 64
        assert "potrf_4" in cold["c_code"]
        assert cold["performance"]["cycles"] > 0
        warm = client.generate(spec="potrf:4")
        assert warm["cache_hit"]
        assert warm["key"] == cold["key"]

    def test_generate_include_code_false(self, client):
        doc = client.generate(spec="potrf:4", include_code=False)
        assert "c_code" not in doc

    def test_generate_from_source(self, client):
        source = """
        Mat A(n, n) <In>;
        Vec x(n) <In>;
        Vec y(n) <Out>;
        y = A * x;
        """
        doc = client.generate(source=source, constants={"n": 4},
                              name="gemv4")
        assert doc["label"] == "gemv4"
        assert "gemv4_kernel" in doc["c_code"]

    def test_generate_scalar_distinct_key(self, client):
        vec = client.generate(spec="potrf:4")
        sca = client.generate(spec="potrf:4", scalar=True)
        assert vec["key"] != sca["key"]
        assert "_mm256" not in sca["c_code"]

    def test_run_numpy_backend_returns_declared_outputs(self, client):
        doc = client.run(spec="potrf:4", backend="numpy")
        assert doc["backend"] == "numpy"
        assert set(doc["outputs"]) == {"U"}
        U = np.asarray(doc["outputs"]["U"])
        assert U.shape == (4, 4)
        assert np.all(np.isfinite(U))

    def test_run_with_client_supplied_inputs(self, client):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((4, 4))
        S = (A @ A.T + 4 * np.eye(4))
        doc = client.run(spec="potrf:4", backend="numpy",
                         inputs={"S": S.tolist()})
        U = np.triu(np.asarray(doc["outputs"]["U"]))
        np.testing.assert_allclose(U.T @ U, S, atol=1e-10)

    def test_run_interpreter_backend_agrees_with_numpy(self, client):
        via_numpy = client.run(spec="potrf:4", backend="numpy", seed=5)
        via_interp = client.run(spec="potrf:4", backend="interpreter",
                                seed=5)
        np.testing.assert_allclose(
            np.asarray(via_numpy["outputs"]["U"]),
            np.asarray(via_interp["outputs"]["U"]), atol=1e-12)

    def test_run_seed_zero_is_honored(self, client):
        # seed=0 is a valid seed, not "use the default".
        zero_a = client.run(spec="potrf:4", backend="numpy", seed=0)
        zero_b = client.run(spec="potrf:4", backend="numpy", seed=0)
        default = client.run(spec="potrf:4", backend="numpy")
        assert zero_a["outputs"] == zero_b["outputs"]
        assert zero_a["outputs"] != default["outputs"]

    def test_stats_endpoint_schema(self, client):
        client.generate(spec="potrf:4")
        doc = client.stats()
        assert doc["server"]["max_inflight"] == 8
        svc = doc["service"]
        assert svc["requests"] == svc["hits"] + svc["misses"]
        assert svc["misses"] == svc["generations"] + svc["coalesced"]
        assert doc["store"]["backend"] == "memory"
        # A single-process server exposes neither worker identity nor
        # cross-process lease counters.
        assert "worker" not in doc
        assert "leases" not in doc

    def test_stats_exposes_phase_cache_counters(self, client):
        cold = json.loads(json.dumps(client.stats()))["service"]
        client.generate(spec="potrf:4")
        warm = client.stats()["service"]
        for doc in (cold, warm):
            cache = doc["phase_cache"]
            for counter in ("hits", "misses", "puts"):
                assert isinstance(cache[counter], int)
                assert cache[counter] >= 0
            assert isinstance(cache["per_phase"], dict)
            for phase, counters in cache["per_phase"].items():
                assert counters["hits"] + counters["misses"] >= 0
        # The generation either ran the staged pipeline (puts grow) or
        # reused memoized phases (hits grow); the counters cannot both
        # stand still across a miss.
        moved = (warm["phase_cache"]["puts"] > cold["phase_cache"]["puts"]
                 or warm["phase_cache"]["hits"]
                 > cold["phase_cache"]["hits"])
        assert moved

    def test_stats_worker_and_lease_blocks(self, tmp_path):
        from repro.service import DiskKernelStore, LeaseManager
        store = DiskKernelStore(root=str(tmp_path / "cache"))
        service = KernelService(store=store, options=_options(),
                                leases=LeaseManager.for_store(store))
        with KernelServer(service, port=0, quiet=True,
                          worker_info={"index": 3, "pid": 4242}) as live:
            doc = live.stats_doc()
            assert doc["worker"] == {"index": 3, "pid": 4242}
            leases = doc["leases"]
            for counter in ("acquired", "adopted", "reaped",
                            "wait_timeouts", "released"):
                assert isinstance(leases[counter], int)
            assert leases["ttl_s"] > 0
            assert leases["root"].endswith(".leases")
            assert live.health_doc()["worker"]["index"] == 3
            json.dumps(doc)  # the whole document must stay JSON-able


class TestErrorPaths:
    def test_unknown_path_404(self, server):
        with pytest.raises(ServiceError, match="404"):
            ServiceClient(server.url)._request("GET", "/nope")

    def test_unknown_workload_400(self, client):
        with pytest.raises(ServiceError, match="unknown workload"):
            client.generate(spec="nosuch:4")

    def test_missing_program_400(self, client):
        with pytest.raises(ServiceError, match="exactly one"):
            client._request("POST", "/generate", {})

    def test_malformed_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/generate", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 400
        assert "JSON" in json.loads(err.value.read())["error"]

    @pytest.mark.parametrize("length", ["abc", "-5"])
    def test_invalid_content_length_rejected_not_hung(self, server, length):
        # A negative length must never reach rfile.read (read(-1) blocks
        # until EOF, pinning the handler thread); malformed ones must not
        # crash the handler.  Either way: a 400, then the socket closes.
        import socket

        raw = (f"POST /generate HTTP/1.1\r\nHost: t\r\n"
               f"Content-Length: {length}\r\n\r\n").encode()
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(raw)
            reply = sock.recv(65536)
        assert reply.split(b"\r\n", 1)[0].endswith(b"400 Bad Request")
        assert b"Content-Length" in reply or b"JSON" in reply

    def test_bad_input_shape_400(self, client):
        with pytest.raises(ServiceError, match="shape"):
            client.run(spec="potrf:4", inputs={"S": [[1.0, 2.0]]})

    def test_unknown_input_operand_400(self, client):
        with pytest.raises(ServiceError, match="unknown input operand"):
            client.run(spec="potrf:4", inputs={"Z": [[1.0]]})

    def test_unknown_backend_400(self, client):
        with pytest.raises(ServiceError, match="unknown execution backend"):
            client.run(spec="potrf:4", backend="fortran")

    def test_non_numeric_client_values_400_not_500(self, client):
        # Client-input conversion errors are 400s, not 500s.
        with pytest.raises(ServiceError, match="400"):
            client.generate(source="Vec y(n) <Out>; y = y;",
                            constants={"n": "four"})
        with pytest.raises(ServiceError, match="400"):
            client.run(spec="potrf:4", seed="soon")
        with pytest.raises(ServiceError, match="400"):
            client.run(spec="potrf:4",
                       inputs={"S": [[1.0, 2.0], [3.0]]})  # ragged


class TestAdmission:
    def test_saturated_admission_answers_503(self, server):
        # Deterministically exhaust every worker slot, then POST.
        for _ in range(server.max_inflight):
            assert server.admit()
        try:
            impatient = ServiceClient(server.url, busy_retries=0)
            with pytest.raises(ServiceError, match="503"):
                impatient.generate(spec="potrf:4")
            assert server.rejected >= 1
        finally:
            for _ in range(server.max_inflight):
                server.release()
        # Slots released: the same request now succeeds.
        doc = ServiceClient(server.url).generate(spec="potrf:4")
        assert doc["key"]

    def test_busy_retry_in_client(self, server):
        # Hold every slot briefly on a timer; a retrying client rides it out.
        for _ in range(server.max_inflight):
            assert server.admit()

        def free():
            time.sleep(0.2)
            for _ in range(server.max_inflight):
                server.release()

        threading.Thread(target=free, daemon=True).start()
        patient = ServiceClient(server.url, busy_retries=20,
                                busy_backoff_s=0.05)
        doc = patient.generate(spec="potrf:4")
        assert doc["key"]

    def test_rejected_post_keeps_keepalive_connection_framed(self, server):
        # A 503 must drain the unread body, or the next request on the
        # same HTTP/1.1 connection would be parsed mid-payload.
        import http.client

        body = json.dumps({"spec": "potrf:4"})
        headers = {"Content-Type": "application/json"}
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        try:
            for _ in range(server.max_inflight):
                assert server.admit()
            try:
                conn.request("POST", "/generate", body=body,
                             headers=headers)
                reply = conn.getresponse()
                assert reply.status == 503
                reply.read()
            finally:
                for _ in range(server.max_inflight):
                    server.release()
            # Same socket: the retry must parse as a fresh request.
            conn.request("POST", "/generate", body=body, headers=headers)
            reply = conn.getresponse()
            assert reply.status == 200
            assert json.loads(reply.read())["key"]
        finally:
            conn.close()

    def test_healthz_not_gated_by_admission(self, server):
        for _ in range(server.max_inflight):
            assert server.admit()
        try:
            doc = ServiceClient(server.url).healthz()
            assert doc["status"] == "ok"
        finally:
            for _ in range(server.max_inflight):
                server.release()


class TestConcurrencyOverHTTP:
    def test_duplicate_posts_coalesce_to_one_generation(self, server):
        from concurrent import futures as cf

        client = ServiceClient(server.url)
        clients = 8
        barrier = threading.Barrier(clients)

        def one(_):
            barrier.wait()
            return client.generate(spec="trtri:8", include_code=False)

        with cf.ThreadPoolExecutor(max_workers=clients) as pool:
            answers = list(pool.map(one, range(clients)))
        assert server.service.stats.generations == 1
        keys = {doc["key"] for doc in answers}
        assert len(keys) == 1
        misses = sum(1 for d in answers if not d["cache_hit"])
        coalesced = sum(1 for d in answers if d["coalesced"])
        assert misses == 1 + coalesced  # one leader, rest coalesced or hits


class TestLifecycle:
    def test_shutdown_releases_port_and_refuses_after(self):
        service = KernelService(store=MemoryKernelStore(),
                                options=_options())
        server = KernelServer(service, port=0, quiet=True)
        server.start_background()
        url = server.url
        assert ServiceClient(url).wait_healthy(timeout=10)["status"] == "ok"
        server.shutdown()
        with pytest.raises(ServiceError, match="cannot reach"):
            ServiceClient(url, timeout=2).healthz()

    def test_rejects_nonpositive_max_inflight(self):
        with pytest.raises(ServiceError, match="max_inflight"):
            KernelServer(KernelService(store=MemoryKernelStore()),
                         port=0, max_inflight=0)
