"""Tests of the empirical autotuning subsystem (src/repro/tuning/).

Covers, per the PR issue: strategy determinism under a fixed seed,
TuningDB round-trip and corruption recovery (mirroring the kernel-store
tests), the measurer fallback order without a C compiler, the widened
deterministic variant space, and the service integration (tuned options
honored on a cache miss).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.applications.cases import make_case
from repro.bench.harness import check_case, measure_slingen
from repro.errors import AutotuningError, ConfigurationError, MeasurementError
from repro.lgen.tiling import CodegenVariant, candidate_variants
from repro.machine.microarch import default_machine
from repro.service.service import GenerationRequest, KernelService
from repro.service.store import DiskKernelStore, MemoryKernelStore
from repro.slingen.generator import SLinGen
from repro.slingen.options import Options
from repro.tuning import measure as measure_mod
from repro.tuning.db import (TUNING_SCHEMA_VERSION, TuningDB, TuningRecord,
                             tuning_key)
from repro.tuning.measure import (CompiledMeasurer, InterpreterMeasurer,
                                  ModelMeasurer, resolve_measurer,
                                  robust_score, synthesize_inputs)
from repro.tuning.strategies import (ExhaustiveSearch, HillClimbSearch,
                                     RandomSearch, SearchSpace, TuningPoint,
                                     TwoPhaseSearch, make_strategy)
from repro.tuning.tuner import Autotuner
from repro.tuning.__main__ import main as tuning_main


def _options(**kwargs) -> Options:
    kwargs.setdefault("annotate_code", False)
    return Options(**kwargs)


def _space(stage1=3) -> SearchSpace:
    return SearchSpace(stage1, candidate_variants())


def _scorer(space):
    """A deterministic synthetic landscape with a unique global minimum."""
    best = TuningPoint(space.stage1_count - 1, space.codegen_count - 1)

    def evaluate(point):
        return (abs(point.stage1 - best.stage1) * 10
                + abs(point.codegen - best.codegen) + 1)
    return evaluate, best


# ---------------------------------------------------------------------------
# Widened variant space
# ---------------------------------------------------------------------------


class TestCandidateVariants:
    def test_space_includes_block_size_and_scalar_replacement(self):
        variants = candidate_variants()
        assert any(v.block_size is not None for v in variants)
        assert any(not v.scalar_replacement for v in variants)

    def test_enumeration_is_deterministic(self):
        assert candidate_variants() == candidate_variants()
        assert ([v.label for v in candidate_variants()]
                == [v.label for v in candidate_variants()])

    def test_default_configuration_first(self):
        first = candidate_variants()[0]
        assert first == CodegenVariant(vector_width=4)

    def test_labels_unique_and_tagged(self):
        variants = candidate_variants()
        labels = [v.label for v in variants]
        assert len(set(labels)) == len(labels)
        assert any("-b" in label for label in labels)
        assert any("-nosr" in label for label in labels)

    def test_differing_fields_distance(self):
        base = CodegenVariant()
        assert base.differing_fields(base) == 0
        from dataclasses import replace
        assert base.differing_fields(replace(base, block_size=2)) == 1
        assert base.differing_fields(
            replace(base, block_size=2, scalar_replacement=False)) == 2


# ---------------------------------------------------------------------------
# Search strategies
# ---------------------------------------------------------------------------


class TestStrategies:
    def test_exhaustive_covers_space_within_budget(self):
        space = _space()
        evaluate, best = _scorer(space)
        outcome = ExhaustiveSearch().search(space, evaluate, budget=1000)
        assert outcome.evaluations == space.size
        assert outcome.best == best

    def test_budget_is_respected(self):
        space = _space()
        evaluate, _ = _scorer(space)
        for strategy in (ExhaustiveSearch(), RandomSearch(seed=1),
                         HillClimbSearch(seed=1), TwoPhaseSearch()):
            outcome = strategy.search(space, evaluate, budget=4)
            assert outcome.evaluations <= 4, strategy.name

    def test_default_point_always_first(self):
        space = _space()
        evaluate, _ = _scorer(space)
        for strategy in (ExhaustiveSearch(), RandomSearch(seed=9),
                         HillClimbSearch(seed=9), TwoPhaseSearch()):
            outcome = strategy.search(space, evaluate, budget=5)
            assert outcome.trials[0].point == TuningPoint(0, 0), strategy.name

    @pytest.mark.parametrize("name", ["random", "hill-climb"])
    def test_seeded_strategies_are_deterministic(self, name):
        space = _space(stage1=4)
        evaluate, _ = _scorer(space)
        runs = [make_strategy(name, seed=42).search(space, evaluate,
                                                    budget=9)
                for _ in range(2)]
        assert [t.point for t in runs[0].trials] \
            == [t.point for t in runs[1].trials]
        assert runs[0].best == runs[1].best

    def test_different_seeds_change_random_order(self):
        space = _space(stage1=4)
        evaluate, _ = _scorer(space)
        a = RandomSearch(seed=0).search(space, evaluate, budget=9)
        b = RandomSearch(seed=1).search(space, evaluate, budget=9)
        assert [t.point for t in a.trials] != [t.point for t in b.trials]

    def test_hill_climb_reaches_global_minimum_unbudgeted(self):
        space = _space(stage1=3)
        evaluate, best = _scorer(space)
        outcome = HillClimbSearch(seed=0).search(space, evaluate)
        assert outcome.best == best

    def test_two_phase_matches_legacy_shape(self):
        space = _space(stage1=3)
        evaluate, _ = _scorer(space)
        outcome = TwoPhaseSearch().search(space, evaluate, budget=100)
        # Phase 1: every stage-1 choice with codegen 0; phase 2: remaining
        # codegen variants for the best algorithm.
        expected = [TuningPoint(s, 0) for s in range(3)]
        expected += [TuningPoint(2, c)
                     for c in range(1, space.codegen_count)]
        assert [t.point for t in outcome.trials] == expected

    def test_memoized_revisits_cost_no_budget(self):
        space = _space(stage1=2)
        calls = []

        def evaluate(point):
            calls.append(point)
            return 1.0
        HillClimbSearch(seed=0).search(space, evaluate, budget=space.size)
        assert len(calls) == len(set(calls))

    def test_unknown_strategy_raises(self):
        with pytest.raises(AutotuningError):
            make_strategy("simulated-annealing")

    def test_neighbors_differ_in_one_knob(self):
        space = _space(stage1=2)
        for neighbor in space.neighbors(TuningPoint(0, 0)):
            if neighbor.stage1 == 0:
                a = space.codegen_variants[0]
                b = space.codegen_variants[neighbor.codegen]
                assert a.differing_fields(b) == 1


# ---------------------------------------------------------------------------
# Measurement backends
# ---------------------------------------------------------------------------


def _candidate_function(n=4):
    case = make_case("potrf", n)
    result = SLinGen(_options(autotune=False)).generate_result(
        case.program, nominal_flops=case.nominal_flops)
    return case, result


class TestMeasurers:
    def test_model_measurer_reuses_estimate(self):
        case, result = _candidate_function()
        measurement = ModelMeasurer().measure(
            result.function, estimate=result.performance)
        assert measurement.score == result.performance.cycles
        assert measurement.backend == "model"

    def test_interpreter_measurer_is_deterministic(self):
        case, result = _candidate_function()
        inputs = case.make_inputs(seed=17)
        a = InterpreterMeasurer().measure(result.function, inputs=inputs)
        b = InterpreterMeasurer().measure(result.function, inputs=inputs)
        assert a.score == b.score > 0
        assert a.unit == "ops"

    def test_interpreter_counts_grow_with_problem_size(self):
        _, small = _candidate_function(4)
        _, large = _candidate_function(8)
        score = {n: InterpreterMeasurer().measure(r.function).score
                 for n, r in (("small", small), ("large", large))}
        assert score["large"] > score["small"]

    def test_synthesized_inputs_run_all_kernels(self):
        for name in ("potrf", "trtri"):
            case = make_case(name, 6)
            result = SLinGen(_options(autotune=False)).generate_result(
                case.program)
            outputs = result.run(synthesize_inputs(result.function))
            for value in outputs.values():
                assert np.all(np.isfinite(value))

    def test_robust_score_rejects_outliers(self):
        score, rejected = robust_score([1.0, 1.05, 0.95, 1.02, 50.0])
        assert rejected == 1
        assert score < 2.0

    def test_robust_score_identical_samples(self):
        score, rejected = robust_score([3.0, 3.0, 3.0])
        assert score == 3.0 and rejected == 0

    def test_fallback_order_without_compiler(self, monkeypatch):
        from repro.tuning.measure import NumPyMeasurer
        monkeypatch.setattr(measure_mod, "compiler_available", lambda: False)
        measurer = resolve_measurer("auto")
        assert isinstance(measurer, NumPyMeasurer)
        with pytest.raises(MeasurementError):
            resolve_measurer("compiled")

    def test_auto_prefers_compiled_when_available(self, monkeypatch):
        monkeypatch.setattr(measure_mod, "compiler_available", lambda: True)
        assert isinstance(resolve_measurer("auto"), CompiledMeasurer)

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_BACKEND", "model")
        assert isinstance(resolve_measurer(None), ModelMeasurer)

    def test_unknown_backend_raises(self):
        with pytest.raises(MeasurementError):
            resolve_measurer("oracle")

    def test_measurer_instance_passes_through(self):
        instance = InterpreterMeasurer()
        assert resolve_measurer(instance) is instance

    @pytest.mark.skipif(not measure_mod.compiler_available(),
                        reason="no C compiler")
    def test_compiled_measurer_times_real_kernel(self):
        case, result = _candidate_function()
        measurement = CompiledMeasurer(repeats=5, warmup=1, inner=8).measure(
            result.function, inputs=case.make_inputs(seed=17))
        assert measurement.score > 0
        assert measurement.unit == "seconds"
        assert len(measurement.samples) == 5


# ---------------------------------------------------------------------------
# Tuning database
# ---------------------------------------------------------------------------


def _record(key="ab" * 32, **overrides) -> TuningRecord:
    doc = dict(
        key=key, program_name="potrf_4", label="potrf:4",
        strategy="hill-climb", backend="interpreter", unit="ops",
        budget=8, seed=0, evaluations=6,
        best_label="0:blocked|avx-u8-lsa", best_score=100.0,
        baseline_score=120.0,
        options={"vectorize": True, "vector_width": 4, "block_size": 2,
                 "unroll_trip_count": 16, "unroll_body_limit": 128,
                 "use_shuffle_transpose": True, "load_store_analysis": True,
                 "scalar_replacement": False},
        stage1_variants={0: "blocked"},
        trials=[{"label": "x", "score": 120.0}])
    doc.update(overrides)
    return TuningRecord(**doc)


class TestTuningDB:
    def test_round_trip(self, tmp_path):
        db = TuningDB(root=str(tmp_path))
        record = _record()
        db.put(record.key, record)
        loaded = db.get(record.key)
        assert loaded == record
        assert loaded.stage1_variants == {0: "blocked"}
        assert list(db.keys()) == [record.key]

    def test_miss_returns_none(self, tmp_path):
        db = TuningDB(root=str(tmp_path))
        assert db.get("cd" * 32) is None
        assert db.stats()["misses"] == 1

    def test_corrupted_record_recovers_as_miss(self, tmp_path):
        record = _record()
        TuningDB(root=str(tmp_path)).put(record.key, record)
        # A fresh instance (new process) finds the on-disk corruption; the
        # writer's own hot layer is allowed to keep serving its copy.
        db = TuningDB(root=str(tmp_path))
        path = db._record_path(record.key)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert db.get(record.key) is None
        assert db.corrupt_dropped == 1
        assert not os.path.exists(path)
        # Re-tuning repopulates cleanly.
        db.put(record.key, record)
        assert db.get(record.key) == record

    def test_schema_drift_quarantined(self, tmp_path):
        record = _record()
        TuningDB(root=str(tmp_path)).put(record.key, record)
        db = TuningDB(root=str(tmp_path))
        path = db._record_path(record.key)
        doc = json.load(open(path))
        doc["schema"] = TUNING_SCHEMA_VERSION + 1
        json.dump(doc, open(path, "w"))
        assert db.get(record.key) is None
        assert db.corrupt_dropped == 1

    def test_hot_layer_serves_repeat_lookups(self, tmp_path):
        db = TuningDB(root=str(tmp_path))
        record = _record()
        db.put(record.key, record)
        assert db.get(record.key) == record
        assert db.get(record.key) == record
        assert db.hot_hits == 2           # put + both gets skipped disk
        db.delete(record.key)
        assert db.get(record.key) is None  # delete invalidates the layer

    def test_delete_purge_contains(self, tmp_path):
        db = TuningDB(root=str(tmp_path))
        a, b = _record("ab" * 32), _record("cd" * 32, label="potrf:8")
        db.put(a.key, a)
        db.put(b.key, b)
        assert a.key in db and len(db) == 2
        assert db.delete(a.key) and not db.delete(a.key)
        assert db.purge() == 1
        assert len(db) == 0

    def test_apply_pins_options(self):
        base = _options(autotune=True, max_variants=6)
        tuned = _record().apply(base)
        assert tuned.autotune is False
        assert tuned.stage1_variants == {0: "blocked"}
        assert tuned.block_size == 2
        assert tuned.unroll_trip_count == 16
        assert tuned.scalar_replacement is False
        assert tuned.annotate_code is False          # base field preserved
        tuned.validate()

    def test_apply_never_forces_disabled_capabilities(self):
        """A record tuned under a permissive base can only switch knobs
        *off* for a stricter request, never on: no AVX kernels for a
        vectorize=False caller."""
        record = _record()                       # vectorized winner, w=4
        scalar = record.apply(_options(vectorize=False))
        assert scalar.vectorize is False
        assert scalar.effective_vector_width == 1
        no_lsa = record.apply(_options(load_store_analysis=False))
        assert no_lsa.load_store_analysis is False
        sse = record.apply(_options(vector_width=2))
        assert sse.vector_width == 2             # never widened past base
        # A scalar-tuned record composes onto a vectorized base as scalar
        # (switching vectorization off is allowed).
        rec_options = dict(_record().options, vectorize=False)
        scalar_rec = _record(options=rec_options)
        assert scalar_rec.apply(_options()).vectorize is False

    def test_tuning_key_properties(self):
        p4, p8 = make_case("potrf", 4), make_case("potrf", 8)
        key = tuning_key(p4.program)
        assert key == tuning_key(p4.program)
        assert key != tuning_key(p8.program)
        # Scalar and vectorized tuning runs must not clobber each other.
        assert key != tuning_key(p4.program, vectorize=False)
        # The searched options are deliberately NOT part of the key.
        machine = default_machine()
        assert tuning_key(p4.program, machine) == key


# ---------------------------------------------------------------------------
# Options.stage1_variants plumbing
# ---------------------------------------------------------------------------


class TestPinnedStage1:
    def test_pinned_generation_builds_one_candidate(self):
        case = make_case("potrf", 8)
        result = SLinGen(_options(
            autotune=False, stage1_variants={0: "blocked"})).generate_result(
                case.program)
        assert len(result.candidates) == 1
        assert result.variant_label.startswith("0:blocked")
        assert check_case(case, result)

    def test_invalid_stage1_variants_rejected(self):
        with pytest.raises(ConfigurationError):
            _options(stage1_variants={-1: "x"}).validate()
        with pytest.raises(ConfigurationError):
            _options(stage1_variants={0: ""}).validate()

    def test_unknown_variant_falls_back_to_default(self):
        case = make_case("potrf", 8)
        result = SLinGen(_options(
            autotune=False,
            stage1_variants={0: "no-such-variant"})).generate_result(
                case.program)
        assert check_case(case, result)


# ---------------------------------------------------------------------------
# Generator strategy delegation
# ---------------------------------------------------------------------------


class TestGeneratorStrategies:
    def test_default_search_is_model_driven_two_phase(self):
        case = make_case("trtri", 8)
        result = SLinGen(_options(autotune=True, max_variants=6)) \
            .generate_result(case.program)
        assert len(result.candidates) == 6
        # Model scores equal the candidates' roofline cycles.
        for cand in result.candidates:
            if cand["score"] is not None:
                assert cand["score"] == cand["cycles"]

    @pytest.mark.parametrize("strategy", ["exhaustive", "random",
                                          "hill-climb"])
    def test_strategies_generate_correct_code(self, strategy):
        case = make_case("potrf", 8)
        result = SLinGen(_options(autotune=True, max_variants=6),
                         strategy=strategy,
                         measurer=InterpreterMeasurer()).generate_result(
            case.program, nominal_flops=case.nominal_flops)
        assert check_case(case, result)
        assert 1 <= len(result.candidates) <= 6

    def test_generator_raises_when_nothing_measures(self):
        class DeadMeasurer(InterpreterMeasurer):
            name = "dead"

            def measure(self, function, estimate=None, inputs=None):
                raise MeasurementError("no backend")

        case = make_case("potrf", 4)
        with pytest.raises(AutotuningError):
            SLinGen(_options(autotune=True, max_variants=4),
                    strategy="exhaustive",
                    measurer=DeadMeasurer()).generate_result(case.program)

    def test_empirical_generator_bypasses_content_store(self):
        """A custom strategy/measurer changes which kernel wins without
        changing the cache key, so such generators must not touch the
        content-addressed store (stored results stay pure functions of
        their key)."""
        store = MemoryKernelStore()
        case = make_case("potrf", 4)
        SLinGen(_options(), store=store, strategy="exhaustive",
                measurer=InterpreterMeasurer()).generate_result(case.program)
        assert len(store) == 0
        SLinGen(_options(), store=store).generate_result(case.program)
        assert len(store) == 1


# ---------------------------------------------------------------------------
# The autotuner
# ---------------------------------------------------------------------------


class TestAutotuner:
    def test_tune_persists_record(self, tmp_path):
        case = make_case("potrf", 4)
        db = TuningDB(root=str(tmp_path))
        tuner = Autotuner(db=db, measurer="interpreter",
                          strategy="hill-climb", budget=8, seed=0)
        record = tuner.tune_case(case, options=_options())
        assert record.key in db
        assert record.evaluations <= 8
        assert record.best_score <= record.baseline_score
        assert record.backend == "interpreter"
        assert record.label == "potrf:4"
        assert db.get(record.key) == record

    def test_tuned_record_replays_exactly(self, tmp_path):
        case = make_case("potrf", 4)
        tuner = Autotuner(db=TuningDB(root=str(tmp_path)),
                          measurer="interpreter", strategy="exhaustive",
                          budget=10, seed=0)
        record = tuner.tune_case(case, options=_options())
        tuned = record.apply(_options())
        result = SLinGen(tuned).generate_result(
            case.program, nominal_flops=case.nominal_flops)
        assert len(result.candidates) == 1
        assert result.variant_label == record.best_label
        assert check_case(case, result)

    def test_tuning_is_deterministic_under_seed(self, tmp_path):
        case = make_case("trtri", 4)
        records = []
        for run in range(2):
            tuner = Autotuner(db=None, measurer="interpreter",
                              strategy="hill-climb", budget=6, seed=7)
            records.append(tuner.tune_case(case, options=_options()))
        assert records[0].best_label == records[1].best_label
        assert records[0].best_score == records[1].best_score
        assert [t["label"] for t in records[0].trials] \
            == [t["label"] for t in records[1].trials]

    def test_tuned_options_idempotent_via_db(self, tmp_path):
        case = make_case("potrf", 4)
        db = TuningDB(root=str(tmp_path))
        tuner = Autotuner(db=db, measurer="interpreter", budget=6)
        first = tuner.tuned_options_for_case(case, _options())
        hits_before = db.hits
        second = tuner.tuned_options_for_case(case, _options())
        assert first == second
        assert db.hits > hits_before       # answered from the database

    def test_tuned_options_without_tuning(self, tmp_path):
        case = make_case("potrf", 4)
        tuner = Autotuner(db=TuningDB(root=str(tmp_path)),
                          measurer="interpreter", budget=4)
        assert tuner.tuned_options(case.program,
                                   tune_if_missing=False) is None

    def test_partial_measurement_failure_still_tunes(self, tmp_path):
        """One variant failing to measure must not abort the session; only
        all-failed runs raise."""
        class FlakyMeasurer(InterpreterMeasurer):
            name = "flaky"

            def __init__(self):
                super().__init__()
                self.calls = 0

            def measure(self, function, estimate=None, inputs=None):
                self.calls += 1
                if self.calls > 1:
                    raise MeasurementError("boom")
                return super().measure(function, estimate=estimate,
                                       inputs=inputs)

        case = make_case("potrf", 4)
        tuner = Autotuner(db=TuningDB(root=str(tmp_path)),
                          measurer=FlakyMeasurer(), strategy="exhaustive",
                          budget=4, seed=0)
        record = tuner.tune_case(case, options=_options())
        assert record.evaluations == 4
        assert record.best_score == record.baseline_score  # only survivor
        assert sum(1 for t in record.trials if "error" in t) == 3

        class DeadMeasurer(InterpreterMeasurer):
            name = "dead"

            def measure(self, function, estimate=None, inputs=None):
                raise MeasurementError("no backend")

        dead = Autotuner(db=None, measurer=DeadMeasurer(),
                         strategy="exhaustive", budget=2)
        with pytest.raises(AutotuningError):
            dead.tune_case(case, options=_options())

    @pytest.mark.skipif(not measure_mod.compiler_available(),
                        reason="no C compiler")
    def test_compiled_tuning_never_worse_than_default(self, tmp_path):
        """Acceptance: with a C compiler, the tuned kernel's measured time
        is <= the default-options kernel's on the same machine (both
        scores come from the same tuning session's measurements)."""
        case = make_case("potrf", 4)
        tuner = Autotuner(db=TuningDB(root=str(tmp_path)),
                          measurer="compiled", strategy="hill-climb",
                          budget=8, seed=0)
        record = tuner.tune_case(case, options=_options())
        assert record.unit == "seconds"
        assert record.best_score <= record.baseline_score


# ---------------------------------------------------------------------------
# Service integration
# ---------------------------------------------------------------------------


class TestServiceIntegration:
    def _tuned_setup(self, tmp_path, spec_n=4):
        case = make_case("potrf", spec_n)
        db = TuningDB(root=str(tmp_path / "tuning"))
        tuner = Autotuner(db=db, measurer="interpreter",
                          strategy="hill-climb", budget=8, seed=0)
        record = tuner.tune_case(case, options=_options())
        return case, db, record

    def test_tuned_options_honored_on_cache_miss(self, tmp_path):
        case, db, record = self._tuned_setup(tmp_path)
        service = KernelService(store=MemoryKernelStore(), tuning_db=db)
        response = service.generate(GenerationRequest(
            program=case.program, options=_options(),
            nominal_flops=case.nominal_flops))
        assert response.tuned and not response.cache_hit
        assert response.result.options.autotune is False
        assert response.result.options.stage1_variants \
            == record.stage1_variants
        assert response.result.variant_label == record.best_label
        assert check_case(case, response.result)
        assert service.stats.snapshot()["tuned"] == 1

    def test_tuned_and_untuned_keys_differ(self, tmp_path):
        case, db, _ = self._tuned_setup(tmp_path)
        request = GenerationRequest(program=case.program, options=_options())
        tuned = KernelService(store=MemoryKernelStore(), tuning_db=db)
        plain = KernelService(store=MemoryKernelStore())
        assert tuned.request_key(request) != plain.request_key(request)

    def test_second_tuned_request_is_cache_hit(self, tmp_path):
        case, db, _ = self._tuned_setup(tmp_path)
        store = DiskKernelStore(root=str(tmp_path / "kernels"))
        service = KernelService(store=store, tuning_db=db)
        request = GenerationRequest(program=case.program, options=_options())
        first = service.generate(request)
        second = service.generate(request)
        assert not first.cache_hit and second.cache_hit
        assert second.tuned
        assert second.key == first.key

    def test_generate_many_routes_tuned_options(self, tmp_path):
        case, db, record = self._tuned_setup(tmp_path)
        other = make_case("trtri", 4)          # no tuning record
        service = KernelService(store=MemoryKernelStore(), tuning_db=db)
        responses = service.generate_many(
            [GenerationRequest(program=case.program, options=_options()),
             GenerationRequest(program=other.program, options=_options())],
            parallel=False)
        assert responses[0].tuned and not responses[1].tuned
        assert responses[0].result.variant_label == record.best_label

    def test_scalar_request_ignores_vectorized_record(self, tmp_path):
        """Records are keyed by the vectorize axis: a scalar request must
        not pick up (or be forced onto) the vectorized tuning winner."""
        case, db, _ = self._tuned_setup(tmp_path)   # vectorized record
        service = KernelService(store=MemoryKernelStore(), tuning_db=db)
        response = service.generate(GenerationRequest(
            program=case.program, options=_options(vectorize=False)))
        assert not response.tuned
        assert response.result.options.vectorize is False
        assert response.result.function.vector_width == 1

    def test_scalar_and_vector_tuning_coexist(self, tmp_path):
        case = make_case("potrf", 4)
        db = TuningDB(root=str(tmp_path))
        tuner = Autotuner(db=db, measurer="interpreter", budget=4)
        vec = tuner.tune_case(case, options=_options())
        sca = tuner.tune_case(case, options=_options(vectorize=False))
        assert vec.key != sca.key
        assert len(db) == 2
        assert db.get(vec.key).options["vectorize"] is True
        assert db.get(sca.key).options["vectorize"] is False

    def test_service_without_db_is_unchanged(self, tmp_path):
        case = make_case("potrf", 4)
        service = KernelService(store=MemoryKernelStore())
        response = service.generate(GenerationRequest(
            program=case.program, options=_options()))
        assert not response.tuned
        assert response.result.options.autotune is True

    def test_harness_routes_through_tuner(self, tmp_path):
        case = make_case("potrf", 4)
        db = TuningDB(root=str(tmp_path))
        tuner = Autotuner(db=db, measurer="interpreter", budget=6)
        generated, flops_per_cycle, correct = measure_slingen(
            case, _options(), validate=True, tuner=tuner)
        assert correct
        assert generated.options.autotune is False
        assert tuning_key(case.program, tuner.machine) in db


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestTuningCLI:
    def test_tune_report_export_purge(self, tmp_path, capsys):
        db_dir = str(tmp_path / "db")
        assert tuning_main(["--db", db_dir, "report", "potrf:4"]) == 1
        capsys.readouterr()

        code = tuning_main(["--db", db_dir, "tune", "potrf:4",
                            "--backend", "interpreter", "--budget", "4",
                            "--strategy", "hill-climb"])
        assert code == 0
        assert "potrf:4" in capsys.readouterr().out

        assert tuning_main(["--db", db_dir, "report", "potrf:4"]) == 0
        assert "potrf:4" in capsys.readouterr().out

        assert tuning_main(["--db", db_dir, "export"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc) == 1 and doc[0]["label"] == "potrf:4"

        out_file = str(tmp_path / "records.json")
        assert tuning_main(["--db", db_dir, "export",
                            "--output", out_file]) == 0
        capsys.readouterr()
        assert json.load(open(out_file))[0]["label"] == "potrf:4"

        assert tuning_main(["--db", db_dir, "purge", "--yes"]) == 0
        assert "purged 1" in capsys.readouterr().out

    def test_bad_spec_errors_cleanly(self, tmp_path, capsys):
        code = tuning_main(["--db", str(tmp_path), "tune", "nope:4",
                            "--backend", "interpreter"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_module_entry_point_smoke(self, tmp_path):
        """The CI smoke invocation: tune one small kernel with the
        interpreter backend and assert a record landed in the DB."""
        env = dict(os.environ, PYTHONPATH="src",
                   REPRO_TUNING_DB=str(tmp_path / "db"))
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        run = subprocess.run(
            [sys.executable, "-m", "repro.tuning", "tune", "potrf:4",
             "--backend", "interpreter", "--budget", "4"],
            capture_output=True, text=True, cwd=root, env=env)
        assert run.returncode == 0, run.stderr
        check = subprocess.run(
            [sys.executable, "-m", "repro.tuning", "report", "potrf:4"],
            capture_output=True, text=True, cwd=root, env=env)
        assert check.returncode == 0, check.stdout + check.stderr
        assert "potrf:4" in check.stdout
