"""Golden-snippet tests of the C unparser's masked and reduction paths.

The masked ``_mm256_maskload_pd``/``_mm256_maskstore_pd`` emission and the
horizontal-reduction/extraction helpers were previously covered only
indirectly (through end-to-end compile-and-run tests); these tests pin the
exact emitted C so a regression in mask-constant ordering or helper
plumbing is caught at the text level, with or without a C compiler.
"""

import pytest

from repro.backend import compiler_available, unparse_function
from repro.backend.c_unparser import CUnparser
from repro.cir.nodes import (Affine, Assign, Buffer, Function, ScalarVar,
                             Store, VecVar, VExtract, VLoad, VReduceAdd,
                             VStore)
from repro.errors import BackendError


def make_function(body, params=None, vector_width=4):
    if params is None:
        params = [Buffer("x", 1, 8, "in"), Buffer("y", 1, 8, "out")]
    return Function("golden_kernel", params=params, body=body,
                    vector_width=vector_width)


class TestMaskedAccessEmission:
    def test_maskload_uses_named_mask_constant(self):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 8, "out")
        fn = make_function([
            Assign(VecVar("r"), VLoad(x, Affine.constant(4),
                                      mask=(True, True, False, False))),
            VStore(y, Affine.constant(0), VecVar("r")),
        ], params=[x, y])
        code = unparse_function(fn)
        assert "_mm256_maskload_pd(&x[4], mask0)" in code

    def test_maskstore_uses_named_mask_constant(self):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 8, "out")
        fn = make_function([
            Assign(VecVar("r"), VLoad(x, Affine.constant(0))),
            VStore(y, Affine.constant(4), VecVar("r"),
                   mask=(True, False, False, False)),
        ], params=[x, y])
        code = unparse_function(fn)
        assert "_mm256_maskstore_pd(&y[4], mask0, r);" in code

    def test_mask_constant_lane_order_is_reversed(self):
        """``_mm256_set_epi64x`` takes lane 3 first: the (T, T, F, F) mask
        -- lanes 0 and 1 active -- must emit as (0, 0, -1, -1)."""
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 8, "out")
        fn = make_function([
            Assign(VecVar("r"), VLoad(x, Affine.constant(0),
                                      mask=(True, True, False, False))),
            VStore(y, Affine.constant(0), VecVar("r")),
        ], params=[x, y])
        code = unparse_function(fn)
        assert ("const __m256i mask0 = "
                "_mm256_set_epi64x(0, 0, -1, -1);") in code

    def test_distinct_masks_get_distinct_constants(self):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 8, "out")
        fn = make_function([
            Assign(VecVar("a"), VLoad(x, Affine.constant(0),
                                      mask=(True, False, False, False))),
            Assign(VecVar("b"), VLoad(x, Affine.constant(4),
                                      mask=(True, True, True, False))),
            VStore(y, Affine.constant(0), VecVar("a"),
                   mask=(True, False, False, False)),
            VStore(y, Affine.constant(4), VecVar("b"),
                   mask=(True, True, True, False)),
        ], params=[x, y])
        code = unparse_function(fn)
        assert "_mm256_set_epi64x(0, 0, 0, -1);" in code
        assert "_mm256_set_epi64x(0, -1, -1, -1);" in code
        # each mask declared once, reused by load and store
        assert code.count("_mm256_set_epi64x") == 2
        assert "mask0" in code and "mask1" in code

    def test_unmasked_accesses_use_loadu_storeu(self):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 8, "out")
        fn = make_function([
            Assign(VecVar("r"), VLoad(x, Affine.constant(0))),
            VStore(y, Affine.constant(0), VecVar("r")),
        ], params=[x, y])
        code = unparse_function(fn)
        assert "_mm256_loadu_pd(&x[0])" in code
        assert "_mm256_storeu_pd(&y[0], r);" in code
        assert "maskload" not in code and "maskstore" not in code


class TestReductionEmission:
    def _reduction_function(self):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 1, "out")
        return make_function([
            Assign(VecVar("v"), VLoad(x, Affine.constant(0))),
            Assign(ScalarVar("s"), VReduceAdd(VecVar("v"))),
            Store(y, Affine.constant(0), ScalarVar("s")),
        ], params=[x, y])

    def test_reduce_add_emits_helper_and_call(self):
        code = unparse_function(self._reduction_function())
        # the static inline helper is part of the translation unit...
        assert "static inline double repro_reduce_add_pd(__m256d v)" in code
        assert "_mm256_extractf128_pd(v, 1)" in code
        assert "_mm_unpackhi_pd(sum2, sum2)" in code
        # ... and the reduction site calls it
        assert "s = repro_reduce_add_pd(v);" in code

    def test_extract_emits_helper_and_lane_call(self):
        x = Buffer("x", 1, 8, "in")
        y = Buffer("y", 1, 1, "out")
        fn = make_function([
            Assign(VecVar("v"), VLoad(x, Affine.constant(0))),
            Store(y, Affine.constant(0), VExtract(VecVar("v"), 3)),
        ], params=[x, y])
        code = unparse_function(fn)
        assert "static inline double repro_extract_pd(__m256d v, int lane)" \
            in code
        assert "y[0] = repro_extract_pd(v, 3);" in code

    def test_scalar_function_omits_avx_header(self):
        from repro.cir.nodes import Load

        x = Buffer("x", 1, 2, "in")
        y = Buffer("y", 1, 1, "out")
        fn = make_function([
            Store(y, Affine.constant(0), Load(x, Affine.constant(1))),
        ], params=[x, y], vector_width=1)
        code = unparse_function(fn)
        assert "immintrin.h" not in code
        assert "repro_reduce_add_pd" not in code

    def test_vector_register_in_scalar_function_rejected(self):
        y = Buffer("y", 1, 4, "out")
        fn = make_function([
            Assign(VecVar("v"), VLoad(y, Affine.constant(0))),
            VStore(y, Affine.constant(0), VecVar("v")),
        ], params=[y], vector_width=1)
        with pytest.raises(BackendError):
            CUnparser(fn).unparse()


@pytest.mark.skipif(not compiler_available(),
                    reason="needs a C compiler")
class TestGoldenSnippetsCompile:
    def test_masked_and_reduction_code_compiles_and_runs(self):
        import numpy as np

        from repro.backend import compile_kernel
        from repro.cir.interpreter import Interpreter

        x = Buffer("x", 1, 6, "in")
        y = Buffer("y", 1, 2, "out")
        mask = (True, True, False, False)
        fn = make_function([
            Assign(VecVar("v"), VLoad(x, Affine.constant(2), mask=mask)),
            Assign(ScalarVar("s"), VReduceAdd(VecVar("v"))),
            Store(y, Affine.constant(0), ScalarVar("s")),
            Store(y, Affine.constant(1), VExtract(VecVar("v"), 1)),
        ], params=[x, y])
        inputs = {"x": np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])}
        expected = Interpreter(fn).run(inputs)
        compiled = compile_kernel(unparse_function(fn), fn).run(inputs)
        np.testing.assert_allclose(compiled["y"], expected["y"], atol=0,
                                   rtol=0)
