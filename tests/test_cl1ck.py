"""Tests for the Cl1ck-style Stage 1: HLAC recognition, variants, database."""

import numpy as np
import pytest

from repro.applications import make_case
from repro.cir import run_function
from repro.cl1ck import AlgorithmDatabase, Synthesizer, recognize
from repro.errors import UnsupportedHLACError
from repro.ir import (Equation, IOType, Matrix, Mul, Program, Ref, Transpose,
                      ref)
from repro.ir.properties import Properties
from repro.kernels import reference as refk
from repro.la import parse_program
from repro.lgen import LoweringOptions, lower_program
from repro.slingen import synthesize_basic_program, find_hlac_sites


class TestRecognition:
    def test_cholesky_upper(self):
        case = make_case("potrf", 8)
        op = recognize(case.program.statements[0])
        assert op.kind == "cholesky_upper"
        assert op.views["factor"].operand.name == "U"

    def test_cholesky_lower_from_gpr(self):
        case = make_case("gpr", 8)
        op = recognize(case.program.hlacs()[0])
        assert op.kind == "cholesky_lower"

    def test_trsm_flags(self):
        source = """
        Mat U(8, 8) <In, UpTri, NS>;
        Mat B(8, 3) <In>;
        Mat X(8, 3) <Out>;
        U' * X = B;
        """
        program = parse_program(source)
        op = recognize(program.statements[0])
        assert op.kind == "trsm"
        assert op.flags["uplo"] == "lower"
        assert op.flags["transposed"] is True

    def test_trtri_and_sylvester_and_lyapunov(self):
        assert recognize(make_case("trtri", 6).program.statements[0]).kind \
            == "trtri"
        assert recognize(make_case("trsyl", 6).program.statements[0]).kind \
            == "trsyl"
        assert recognize(make_case("trlya", 6).program.statements[0]).kind \
            == "trlya"

    def test_unsupported_equation_raises(self):
        prog = Program("p")
        A = prog.declare(Matrix("A", 4, 4, IOType.IN))
        X = prog.declare(Matrix("X", 4, 4, IOType.OUT))
        # A X = B with A *general* (not triangular) is not a supported HLAC.
        B = prog.declare(Matrix("B", 4, 4, IOType.IN))
        stmt = Equation(Mul(ref(A), ref(X)), ref(B))
        with pytest.raises(UnsupportedHLACError):
            recognize(stmt)

    def test_signature_enables_reuse(self):
        case = make_case("kf", 8)
        hlacs = case.program.hlacs()
        ops = [recognize(s) for s in hlacs]
        trsm_sigs = {op.signature() for op in ops if op.kind == "trsm"}
        # kf has 4 triangular solves: two vector ones and two matrix ones,
        # each pair differing only in the transposition flag.
        assert len(trsm_sigs) == 4


class TestVariantsAndDatabase:
    def test_cholesky_variant_count(self):
        case = make_case("potrf", 8)
        prog = case.program
        synth = Synthesizer(Program("scratch", operands=dict(prog.operands)),
                            block_size=4)
        op = recognize(prog.statements[0])
        variants = synth.variants_for(op)
        # rhs S is an input here, so the in-place right-looking variant is
        # not offered: blocked + unblocked remain.
        assert variants == ["blocked", "unblocked"]

    def test_right_looking_offered_when_rhs_writable(self):
        source = """
        Mat S(8, 8) <Out, UpSym, PD>;
        Mat A(8, 8) <In>;
        Mat U(8, 8) <Out, UpTri, NS, ow(S)>;
        S = A * A' ;
        U' * U = S;
        """
        program = parse_program(source)
        sites = find_hlac_sites(program, 4)
        assert "right-looking" in sites[0].variants

    def test_database_caches_repeated_synthesis(self):
        case = make_case("kf", 8)
        database = AlgorithmDatabase()
        synthesize_basic_program(case.program, 4, database=database)
        first = database.stats()
        synthesize_basic_program(case.program, 4, database=database)
        second = database.stats()
        assert second["hits"] > first["hits"]

    def test_stage1_output_is_basic(self):
        case = make_case("kf", 8)
        result = synthesize_basic_program(case.program, 4)
        assert result.program.is_basic()
        assert len(result.variant_choices) == 5


def _expand_and_run(case, variant, width=1, block=4):
    sites = find_hlac_sites(case.program, block)
    choices = {site.index: variant for site in sites}
    result = synthesize_basic_program(case.program, block, choices)
    function = lower_program(result.program,
                             LoweringOptions(vector_width=width))
    inputs = case.make_inputs(seed=5)
    outputs = run_function(function, inputs)
    return outputs, case.reference_outputs(inputs)


class TestAlgorithmVariantsNumerically:
    @pytest.mark.parametrize("variant", ["blocked", "unblocked"])
    @pytest.mark.parametrize("n", [3, 4, 7, 9, 12])
    def test_cholesky_upper_variants(self, variant, n):
        case = make_case("potrf", n)
        outputs, expected = _expand_and_run(case, variant)
        np.testing.assert_allclose(np.triu(outputs["U"]),
                                   np.triu(expected["U"]), atol=1e-8)

    @pytest.mark.parametrize("variant", ["blocked", "unblocked"])
    @pytest.mark.parametrize("n", [4, 7, 10])
    def test_cholesky_lower_variants(self, variant, n):
        case = make_case("gpr", n)
        outputs, expected = _expand_and_run(case, variant)
        for key in ("phi", "psi", "lambda"):
            np.testing.assert_allclose(outputs[key], expected[key], atol=1e-8)

    @pytest.mark.parametrize("variant", ["blocked", "unblocked"])
    @pytest.mark.parametrize("n", [4, 6, 11])
    def test_trtri_variants(self, variant, n):
        case = make_case("trtri", n)
        outputs, expected = _expand_and_run(case, variant)
        np.testing.assert_allclose(np.tril(outputs["X"]),
                                   np.tril(expected["X"]), atol=1e-8)

    @pytest.mark.parametrize("variant", ["blocked", "columnwise"])
    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_trsyl_variants(self, variant, n):
        case = make_case("trsyl", n)
        outputs, expected = _expand_and_run(case, variant)
        np.testing.assert_allclose(outputs["X"], expected["X"], atol=1e-7)

    @pytest.mark.parametrize("variant", ["gemv", "columnwise"])
    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_trlya_variants(self, variant, n):
        case = make_case("trlya", n)
        outputs, expected = _expand_and_run(case, variant)
        np.testing.assert_allclose(outputs["X"], expected["X"], atol=1e-7)

    @pytest.mark.parametrize("variant", ["blocked", "unblocked"])
    def test_trsm_variants_in_kf(self, variant):
        case = make_case("kf", 7)
        outputs, expected = _expand_and_run(case, variant)
        np.testing.assert_allclose(outputs["x"], expected["x"], atol=1e-8)
        np.testing.assert_allclose(outputs["P"], expected["P"], atol=1e-8)

    def test_right_looking_with_aliasing(self):
        source = """
        Mat A(9, 9) <In>;
        Mat S(9, 9) <Out, UpSym, PD>;
        Mat U(9, 9) <Out, UpTri, NS, ow(S)>;
        S = A' * A;
        U' * U = S;
        """
        program = parse_program(source)
        sites = find_hlac_sites(program, 4)
        choices = {sites[0].index: "right-looking"}
        result = synthesize_basic_program(program, 4, choices)
        function = lower_program(result.program, LoweringOptions(4))
        rng = np.random.default_rng(0)
        A = rng.standard_normal((9, 9)) + 3 * np.eye(9)
        out = run_function(function, {"A": A})
        np.testing.assert_allclose(np.triu(out["S"]),
                                   np.triu(refk.potrf_upper(A.T @ A)),
                                   atol=1e-8)
