"""Phase-cache hot-path benchmark: the tuning sweep, cold vs. warm.

The staged pipeline content-addresses every phase artifact (Stage-1
synthesis, rewrites, lowering, the pass pipeline), so a codegen-axis
sweep shares everything the variants do not change.  This benchmark
drives an exhaustive sweep over one Stage-1 choice and a fixed set of
codegen variants (none of which overrides the blocking factor, so all
of them share one Stage-1 artifact) twice against one
:class:`~repro.pipeline.cache.PhaseCache`:

* **cold** -- every artifact is built; Stage 1 must synthesize exactly
  once for the whole sweep (the cross-variant reuse the pipeline API
  exists for),
* **warm** -- a second builder over the same cache; every phase must
  hit.

Asserts the warm sweep is at least 5x cheaper than the cold one and
that the cold sweep misses Stage 1 exactly once, then writes
``results/generation_hotpath.txt``.  Run with::

    python benchmarks/bench_generation_hotpath.py
"""

import os
import sys
import time

from _bootstrap import ensure_repro_importable

REPO_ROOT = ensure_repro_importable()

#: The profiled workload (the same one CI's pipeline-smoke job uses).
SPEC = "potrf:8"

#: Minimum cold/warm cost ratio; generous against the ~20x measured so
#: CI noise does not flap the job.
MIN_SPEEDUP = 5.0


def _codegen_variants():
    """An exhaustive >= 8-variant sweep that never overrides the Stage-1
    blocking factor -- every variant shares one Stage-1 artifact."""
    from dataclasses import replace

    from repro.lgen.tiling import CodegenVariant

    base = CodegenVariant(vector_width=4)
    variants = [
        base,
        replace(base, unroll_trip_count=4, unroll_body_limit=32),
        replace(base, unroll_trip_count=16, unroll_body_limit=128),
        replace(base, use_shuffle_transpose=False),
        replace(base, scalar_replacement=False),
        replace(base, load_store_analysis=False),
        replace(base, unroll_trip_count=4, unroll_body_limit=32,
                scalar_replacement=False),
        replace(base, use_shuffle_transpose=False,
                load_store_analysis=False),
    ]
    assert all(v.block_size is None for v in variants)
    return variants


def _sweep(builder) -> float:
    started = time.perf_counter()
    for point in builder.space().points():
        builder.candidate(point)
    return time.perf_counter() - started


def run(write_results: bool = True) -> int:
    from repro.machine.microarch import default_machine
    from repro.pipeline.cache import PhaseCache
    from repro.service.registry import build_case, parse_spec
    from repro.slingen.generator import CandidateBuilder
    from repro.slingen.options import Options

    case = build_case(parse_spec(SPEC))
    options = Options(vectorize=True, annotate_code=False)
    machine = default_machine()
    variants = _codegen_variants()

    cache = PhaseCache()
    cold_builder = CandidateBuilder(case.program, options, machine,
                                    [{}], variants,
                                    nominal_flops=case.nominal_flops,
                                    phase_cache=cache)
    cold_s = _sweep(cold_builder)
    cold_stats = cache.stats()["phases"]

    cache.reset_stats()
    warm_builder = CandidateBuilder(case.program, options, machine,
                                    [{}], variants,
                                    nominal_flops=case.nominal_flops,
                                    phase_cache=cache)
    warm_s = _sweep(warm_builder)
    warm_stats = cache.stats()["phases"]

    speedup = cold_s / max(warm_s, 1e-9)
    lines = [
        f"# Phase-cache hot path: exhaustive {len(variants)}-variant "
        f"codegen sweep on {SPEC}",
        "# cold = fresh cache (every artifact built); warm = same cache,",
        "# new builder (every phase must hit).",
        "",
        f"{'pass':6s} {'wall (ms)':>10s}  "
        f"{'stage1 miss':>11s} {'rewrite miss':>12s} "
        f"{'lower miss':>10s} {'optimize miss':>13s}",
    ]
    for name, seconds, stats in (("cold", cold_s, cold_stats),
                                 ("warm", warm_s, warm_stats)):
        lines.append(
            f"{name:6s} {seconds * 1e3:10.1f}  "
            f"{stats['stage1']['misses']:>11d} "
            f"{stats['rewrite']['misses']:>12d} "
            f"{stats['lower']['misses']:>10d} "
            f"{stats['optimize']['misses']:>13d}")
    lines.append("")
    lines.append(f"warm speedup: {speedup:.1f}x (assert >= "
                 f"{MIN_SPEEDUP:.0f}x)")

    failures = []
    if cold_stats["stage1"]["misses"] != 1:
        failures.append(
            f"FAIL: cold sweep built Stage 1 "
            f"{cold_stats['stage1']['misses']} times (expected exactly 1 "
            f"across {len(variants)} variants)")
    warm_misses = sum(stats["misses"] for stats in warm_stats.values())
    if warm_misses:
        failures.append(f"FAIL: warm sweep missed the phase cache "
                        f"{warm_misses} time(s) (expected 0)")
    if speedup < MIN_SPEEDUP:
        failures.append(f"FAIL: warm sweep only {speedup:.1f}x cheaper "
                        f"(expected >= {MIN_SPEEDUP:.0f}x)")
    lines.extend(failures)
    lines.append("FAIL" if failures else "OK")

    text = "\n".join(lines) + "\n"
    print(text, end="")
    if write_results and not failures:
        path = os.path.join(REPO_ROOT, "results", "generation_hotpath.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {os.path.relpath(path, REPO_ROOT)}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(run())
