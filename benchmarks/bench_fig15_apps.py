"""Figure 15: application benchmarks (Kalman filter, kf-28, GPR, L1-analysis)."""

import pytest

from conftest import write_series
from repro.applications import kf_case
from repro.bench import (application_sizes, generator_options,
                         kf28_observation_sizes, run_series)


def _run(case_name, benchmark, results_dir, service, sizes,
         case_factory=None, baselines=None):
    def build():
        return run_series(case_name, sizes, case_factory=case_factory,
                          options=generator_options(), validate=False,
                          baselines=baselines, service=service)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    table = series.format_table()
    write_series(results_dir, f"fig15_{case_name.replace('-', '_')}", table)
    print("\n" + table)
    return series


@pytest.mark.benchmark(group="fig15")
def test_fig15a_kf(benchmark, results_dir, kernel_service):
    series = _run("kf", benchmark, results_dir, kernel_service,
                  application_sizes())
    largest = series.points[-1].performance
    # Paper: SLinGen ~1.4x MKL, ~3x Eigen, ~4x icc on average; gaps are larger
    # at the small sizes typical for Kalman filters.
    assert largest["slingen"] > largest["mkl"]
    assert largest["slingen"] > largest["eigen"]
    assert largest["slingen"] > largest["icc"]
    smallest = series.points[0].performance
    assert smallest["slingen"] > smallest["mkl"]


@pytest.mark.benchmark(group="fig15")
def test_fig15b_kf28(benchmark, results_dir, kernel_service):
    series = _run("kf-28", benchmark, results_dir, kernel_service,
                  kf28_observation_sizes(),
                  case_factory=lambda k: kf_case(28, k))
    largest = series.points[-1].performance
    assert largest["slingen"] > largest["mkl"]


@pytest.mark.benchmark(group="fig15")
def test_fig15c_gpr(benchmark, results_dir, kernel_service):
    series = _run("gpr", benchmark, results_dir, kernel_service,
                  application_sizes())
    largest = series.points[-1].performance
    # Paper: roughly on par with MKL, ~1.7x over icc and Eigen.
    assert largest["slingen"] > largest["icc"]
    assert largest["slingen"] > 0.5 * largest["mkl"]


@pytest.mark.benchmark(group="fig15")
def test_fig15d_l1a(benchmark, results_dir, kernel_service):
    series = _run("l1a", benchmark, results_dir, kernel_service,
                  application_sizes())
    largest = series.points[-1].performance
    # Paper: ~1.6x MKL, ~1.3x Eigen, ~1.5x icc.
    assert largest["slingen"] > largest["icc"]
    assert largest["slingen"] > largest["mkl"]
