"""Ablation benches for the design choices called out in DESIGN.md.

Not part of the paper's tables, but they quantify the individual
contributions of the optimizations the paper describes: vectorization,
the load/store analysis (Fig. 12), the R0/R1 rewrite rules (Table 2), and
the algorithmic autotuning over Cl1ck variants.
"""

import pytest

from conftest import write_series
from repro.applications import make_case
from repro.bench import measure_slingen
from repro.slingen import Options
from repro.tuning import Autotuner, TuningDB, tuning_key


def _cycles(case, service=None, **kwargs):
    options = Options(annotate_code=False, **kwargs)
    generated, _, _ = measure_slingen(case, options, service=service)
    return generated.performance.cycles


@pytest.mark.benchmark(group="ablation")
def test_ablation_vectorization(benchmark, results_dir, kernel_service):
    case = make_case("potrf", 24)

    def build():
        return (_cycles(case, kernel_service, vectorize=True, autotune=False),
                _cycles(case, kernel_service, vectorize=False,
                        autotune=False))

    vectorized, scalar = benchmark.pedantic(build, rounds=1, iterations=1)
    table = (f"[ablation-vectorization] potrf n=24: "
             f"vectorized={vectorized:.0f} cycles, scalar={scalar:.0f} cycles")
    write_series(results_dir, "ablation_vectorization", table)
    print("\n" + table)
    assert vectorized < scalar


@pytest.mark.benchmark(group="ablation")
def test_ablation_loadstore(benchmark, results_dir, kernel_service):
    case = make_case("potrf", 16)

    def build():
        with_lsa, _, _ = measure_slingen(case, Options(
            autotune=False, load_store_analysis=True, annotate_code=False),
            service=kernel_service)
        without_lsa, _, _ = measure_slingen(case, Options(
            autotune=False, load_store_analysis=False, annotate_code=False),
            service=kernel_service)
        return with_lsa, without_lsa

    with_lsa, without_lsa = benchmark.pedantic(build, rounds=1, iterations=1)
    mix_with = with_lsa.performance.mix
    mix_without = without_lsa.performance.mix
    table = ("[ablation-loadstore] potrf n=16: loads "
             f"{mix_with.load_issues:.0f} (with analysis) vs "
             f"{mix_without.load_issues:.0f} (without); forwarded "
             f"{with_lsa.pass_report.load_store.total} accesses")
    write_series(results_dir, "ablation_loadstore", table)
    print("\n" + table)
    assert with_lsa.pass_report.load_store.total > 0
    assert mix_with.load_issues <= mix_without.load_issues


@pytest.mark.benchmark(group="ablation")
def test_ablation_autotune(benchmark, results_dir, kernel_service):
    case = make_case("trtri", 24)

    def build():
        return (_cycles(case, kernel_service, autotune=True, max_variants=8),
                _cycles(case, kernel_service, autotune=False))

    tuned, untuned = benchmark.pedantic(build, rounds=1, iterations=1)
    table = (f"[ablation-autotune] trtri n=24: autotuned={tuned:.0f} cycles, "
             f"default-variant={untuned:.0f} cycles")
    write_series(results_dir, "ablation_autotune", table)
    print("\n" + table)
    assert tuned <= untuned


@pytest.mark.benchmark(group="ablation")
def test_ablation_model_vs_tuned(benchmark, results_dir, kernel_service,
                                 tmp_path):
    """Model-picked vs. empirically tuned variant selection.

    The interpreter measurement backend keeps this deterministic and
    compiler-free; the tuned column can only improve on the default
    configuration because every strategy scores the default point first.
    """
    case = make_case("potrf", 12)
    tuner = Autotuner(db=TuningDB(root=str(tmp_path / "tuning")),
                      machine=kernel_service.machine,
                      measurer="interpreter", strategy="hill-climb",
                      budget=8, seed=0)

    def build():
        model_picked, _, _ = measure_slingen(
            case, Options(autotune=True, max_variants=8,
                          annotate_code=False),
            service=kernel_service)
        tuned, _, _ = measure_slingen(
            case, Options(autotune=True, max_variants=8,
                          annotate_code=False),
            service=kernel_service, tuner=tuner)
        return model_picked, tuned

    model_picked, tuned = benchmark.pedantic(build, rounds=1, iterations=1)
    record = tuner.db.get(tuning_key(case.program, tuner.machine))
    assert record is not None
    assert record.best_score <= record.baseline_score
    table = (f"[ablation-tuning] potrf n=12 ({record.backend} backend, "
             f"{record.strategy}, budget {record.budget}):\n"
             f"  model-picked : {model_picked.variant_label:28s} "
             f"{model_picked.performance.cycles:8.0f} model-cycles\n"
             f"  empirical    : {tuned.variant_label:28s} "
             f"{tuned.performance.cycles:8.0f} model-cycles, "
             f"measured {record.best_score:.6g} {record.unit} "
             f"(baseline {record.baseline_score:.6g}, "
             f"x{record.improvement:.3f})")
    write_series(results_dir, "ablation_tuning", table)
    print("\n" + table)


@pytest.mark.benchmark(group="ablation")
def test_ablation_rewrite_rules(benchmark, results_dir, kernel_service):
    case = make_case("gpr", 16)

    def build():
        with_rules, _, _ = measure_slingen(case, Options(
            autotune=False, rewrite_rules=True, annotate_code=False),
            service=kernel_service)
        without_rules, _, _ = measure_slingen(case, Options(
            autotune=False, rewrite_rules=False, annotate_code=False),
            service=kernel_service)
        return with_rules, without_rules

    with_rules, without_rules = benchmark.pedantic(build, rounds=1,
                                                   iterations=1)
    table = (f"[ablation-rewrite] gpr n=16: "
             f"{with_rules.performance.cycles:.0f} cycles (with R0/R1) vs "
             f"{without_rules.performance.cycles:.0f} cycles (without)")
    write_series(results_dir, "ablation_rewrite", table)
    print("\n" + table)
    assert with_rules.performance.cycles <= without_rules.performance.cycles * 1.05
