"""Cold-vs-warm kernel-cache smoke benchmark (CI-friendly, plain script).

Generates a small workload set twice through one :class:`KernelService`:
the first pass pays full Stage 1-3 generation for every request, the second
is served entirely from the content-addressed store.  Prints per-workload
latencies and asserts the warm pass is at least 10x faster in aggregate, so
a regression that silently disables the cache fails loudly.

Run with::

    python benchmarks/bench_service_cache.py
"""

import sys
import tempfile
import time

from _bootstrap import ensure_repro_importable

ensure_repro_importable()

WORKLOADS = ["potrf:4", "potrf:12", "trtri:8", "trsyl:4", "gpr:8"]


def run(workloads=WORKLOADS) -> int:
    from repro.service import DiskKernelStore, KernelService, make_request

    root = tempfile.mkdtemp(prefix="repro_cache_bench_")
    service = KernelService(store=DiskKernelStore(root=root))
    requests = [make_request(spec) for spec in workloads]

    t0 = time.perf_counter()
    cold = service.generate_many(requests)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = service.generate_many(requests)
    warm_s = time.perf_counter() - t0

    print(f"{'workload':10s} {'cold (ms)':>10s} {'warm (ms)':>10s} "
          f"{'hit':>4s}")
    for c, w in zip(cold, warm):
        print(f"{c.label:10s} {c.latency_s * 1e3:10.1f} "
              f"{w.latency_s * 1e3:10.1f} {str(w.cache_hit):>4s}")
    speedup = cold_s / max(warm_s, 1e-9)
    print(f"{'total':10s} {cold_s * 1e3:10.1f} {warm_s * 1e3:10.1f}   "
          f"-> {speedup:.0f}x warm speedup")

    if any(c.cache_hit for c in cold):
        print("FAIL: cold pass should be all misses")
        return 1
    if not all(w.cache_hit for w in warm):
        print("FAIL: warm pass should be all hits")
        return 1
    if speedup < 10:
        print(f"FAIL: warm pass only {speedup:.1f}x faster (expected >= 10x)")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(run())
