"""Table 4: ERM-style bottleneck analysis of the SLinGen-generated HLAC code.

For each routine and size the table reports the bottleneck resource, the
shuffle/blend issue rate, and the achievable peak performance when taking
shuffles/blends into account -- the same columns as the paper's Table 4.
The paper's qualitative finding is asserted: at small sizes the generated
code is limited by divisions/square roots; at larger sizes by L1 traffic
(or the floating-point ports), never by the shuffles/blends introduced by
the vectorization strategy.
"""

import os

import pytest

from conftest import write_series
from repro.applications import make_case
from repro.bench import full_sizes_requested, generator_options, measure_slingen

ROUTINES = ("potrf", "trsyl", "trlya", "trtri")


def _sizes():
    return [4, 76, 124] if full_sizes_requested() else [4, 20, 36]


def _row(name, size, service=None):
    case = make_case(name, size)
    generated, _, _ = measure_slingen(case, generator_options(autotune=False),
                                      service=service)
    perf = generated.performance
    return {
        "computation": name,
        "size": size,
        "bottleneck": perf.bottleneck,
        "shuffle_blend_issue_rate": perf.shuffle_blend_issue_rate,
        "perf_limit_shuffles": perf.perf_limit_shuffles,
        "perf_limit_blends": perf.perf_limit_blends,
    }


@pytest.mark.benchmark(group="table4")
def test_table4_bottleneck_analysis(benchmark, results_dir,
                                   kernel_service):
    def build():
        rows = []
        for name in ROUTINES:
            for size in _sizes():
                rows.append(_row(name, size, service=kernel_service))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = ["[table4]  bottleneck analysis of SLinGen-generated code",
             f"{'routine':8s} {'n':>4s} {'bottleneck':>12s} "
             f"{'sh/bl rate':>10s} {'lim(shuf)':>10s} {'lim(blend)':>10s}"]
    for row in rows:
        lines.append(f"{row['computation']:8s} {row['size']:4d} "
                     f"{row['bottleneck']:>12s} "
                     f"{row['shuffle_blend_issue_rate']:10.2f} "
                     f"{row['perf_limit_shuffles']:10.2f} "
                     f"{row['perf_limit_blends']:10.2f}")
    table = "\n".join(lines)
    write_series(results_dir, "table4_bottlenecks", table)
    print("\n" + table)

    # Paper's qualitative findings.
    for row in rows:
        if row["size"] == 4:
            assert row["bottleneck"] == "divs/sqrt", row
        # Shuffles/blends never reduce achievable peak below what the paper
        # reports (>= 3.2 f/c even in the worst case, Table 4; we allow a
        # little slack because instruction mixes differ from the authors').
        assert row["perf_limit_shuffles"] >= 2.0, row
        assert row["perf_limit_blends"] >= 2.0, row
    large = [row for row in rows if row["size"] == _sizes()[-1]]
    assert any(row["bottleneck"] != "divs/sqrt" for row in large)
