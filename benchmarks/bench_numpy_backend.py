"""Execution-backend benchmark: interpreter vs NumPy vs compiled C.

A thin consumer of the :mod:`repro.perf` manifest runner: the requested
kernels x sizes x every available backend become an ad-hoc manifest, the
runner produces the schema-versioned records (robust median + MAD, the
same single schema the committed ``BENCH_trajectory.jsonl`` stores), and
this script keeps only its two assertions -- every backend's outputs
validate against the case oracle, and the NumPy translation is at least
10x faster than the C-IR interpreter (the whole point of the backend:
real numeric verification and benchmarking without a compiler, at speeds
the interpreter cannot reach).  Strict 1e-12 cross-backend agreement is
``python -m repro.backend crosscheck``'s job, run separately in CI.

Run with::

    python benchmarks/bench_numpy_backend.py
        [--sizes N ...] [--kernels K ...] [--json FILE] [--output FILE]

``--json`` writes the runner's run document (trajectory-schema records);
``--output`` writes the text table (default ``results/backend_numpy.txt``
when run from the repository root, printed to stdout otherwise).
"""

import argparse
import json
import os
import sys

from _bootstrap import ensure_repro_importable

ensure_repro_importable()

MIN_NUMPY_SPEEDUP = 10.0
DEFAULT_KERNELS = ["potrf", "gemm"]
DEFAULT_SIZES = [4, 8]


def build_manifest(kernels, sizes, repeats):
    """The kernels x sizes x backends matrix as a perf manifest."""
    from repro.perf.manifest import SMOKE_BACKENDS, Manifest, ManifestEntry

    return Manifest(name="backend-numpy", entries=[
        ManifestEntry(kernel=f"{kernel}:{size}", backend=backend,
                      repeats=repeats)
        for kernel in kernels for size in sizes
        for backend in SMOKE_BACKENDS])


def check_run(run):
    """The script's assertions over the runner's records."""
    failures = []
    timing = {}             # (kernel, backend) -> median seconds
    for record in run.records:
        timing[(record["kernel"], record["backend"])] = \
            record["median_seconds"]
        if record["correct"] is False:
            failures.append(f"{record['entry']} output disagrees with the "
                            f"case oracle")
    for (kernel, backend), median in sorted(timing.items()):
        if backend != "numpy":
            continue
        interp = timing.get((kernel, "interpreter"))
        if interp is None:
            continue
        speedup = interp / max(median, 1e-12)
        if speedup < MIN_NUMPY_SPEEDUP:
            failures.append(
                f"{kernel} numpy backend only {speedup:.1f}x faster than "
                f"the interpreter (expected >= {MIN_NUMPY_SPEEDUP:.0f}x)")
    return failures


def format_table(run):
    """The historical kernel/backend/us-per-call/ratio layout."""
    lines = [f"{'kernel':10s} {'backend':12s} {'median us/call':>15s} "
             f"{'vs interpreter':>15s}"]
    interp = {record["kernel"]: record["median_seconds"]
              for record in run.records
              if record["backend"] == "interpreter"}
    for record in run.records:
        ratio = interp.get(record["kernel"], 0.0) \
            / max(record["median_seconds"], 1e-12)
        lines.append(f"{record['kernel']:10s} {record['backend']:12s} "
                     f"{record['median_seconds'] * 1e6:15.1f} "
                     f"{ratio:14.1f}x")
    return "\n".join(lines)


def run(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+", default=DEFAULT_KERNELS)
    parser.add_argument("--sizes", nargs="+", type=int,
                        default=DEFAULT_SIZES)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the run document as JSON "
                             "(trajectory-schema records)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the text table to FILE "
                             "(default: results/backend_numpy.txt when "
                             "that directory exists)")
    args = parser.parse_args(argv)

    from repro.perf import run_manifest

    manifest = build_manifest(args.kernels, args.sizes, args.repeats)
    bench = run_manifest(manifest, validate=True)
    failures = check_run(bench)

    table = format_table(bench)
    print(table)
    for skip in bench.skipped:
        print(f"skipped {skip.entry}: {skip.reason}")
    output = args.output
    if output is None and os.path.isdir("results"):
        output = os.path.join("results", "backend_numpy.txt")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write("[backend_numpy]  execution backends, median "
                         "seconds per call\n" + table + "\n")
        print(f"wrote {output}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(bench.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json} ({len(bench.records)} records)")

    for fail in failures:
        print(f"FAIL: {fail}")
    if failures:
        return 1
    print(f"OK: numpy backend >= {MIN_NUMPY_SPEEDUP:.0f}x faster than the "
          f"interpreter and every backend validates against the oracle")
    return 0


if __name__ == "__main__":
    sys.exit(run())
