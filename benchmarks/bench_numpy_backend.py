"""Execution-backend benchmark: interpreter vs NumPy vs compiled C.

For each (kernel, size) the same generated C-IR function is executed on
every available backend and timed (median seconds per call); all backends
must agree element-wise within 1e-12, and the NumPy translation must be
at least 10x faster than the C-IR interpreter (the whole point of the
backend: real numeric verification and benchmarking without a compiler,
at speeds the interpreter cannot reach).

Run with::

    PYTHONPATH=src python benchmarks/bench_numpy_backend.py
        [--sizes N ...] [--kernels K ...] [--json FILE] [--output FILE]

``--json`` writes machine-readable records ``{kernel, size, backend,
median_seconds}`` (the CI perf-smoke artifact ``BENCH_ci.json``);
``--output`` writes the text table (default ``results/backend_numpy.txt``
when run from the repository root, printed to stdout otherwise).
"""

import argparse
import json
import os
import statistics
import sys

MIN_NUMPY_SPEEDUP = 10.0
TOLERANCE = 1e-12
DEFAULT_KERNELS = ["potrf", "gemm"]
DEFAULT_SIZES = [4, 8]


def bench_one(name: str, size: int, repeats: int):
    """Time one kernel on every available backend; returns (rows, fail)."""
    import numpy as np

    from repro.applications import make_case
    from repro.backend import compiler_available, make_executor
    from repro.slingen import Options, SLinGen

    case = make_case(name, size)
    result = SLinGen(Options(annotate_code=False)).generate_result(
        case.program, nominal_flops=case.nominal_flops)
    inputs = case.make_inputs(seed=17)

    backends = ["interpreter", "numpy"]
    if compiler_available():
        backends.append("compiled")

    rows = []
    outputs = {}
    for backend in backends:
        kernel = make_executor(result.function, backend=backend,
                               c_code=result.c_code)
        outputs[backend] = kernel.run(inputs)
        seconds = statistics.median(kernel.time(inputs, repeats=repeats))
        rows.append({"kernel": name, "size": size, "backend": backend,
                     "median_seconds": seconds})

    fail = None
    reference = outputs["interpreter"]
    for backend in backends[1:]:
        for key in reference:
            deviation = float(np.max(np.abs(outputs[backend][key]
                                            - reference[key])))
            if deviation > TOLERANCE:
                fail = (f"{name}:{size} {backend} deviates from the "
                        f"interpreter by {deviation:.3e} on {key!r}")
    timing = {row["backend"]: row["median_seconds"] for row in rows}
    speedup = timing["interpreter"] / max(timing["numpy"], 1e-12)
    if fail is None and speedup < MIN_NUMPY_SPEEDUP:
        fail = (f"{name}:{size} numpy backend only {speedup:.1f}x faster "
                f"than the interpreter (expected >= "
                f"{MIN_NUMPY_SPEEDUP:.0f}x)")
    return rows, fail


def run(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kernels", nargs="+", default=DEFAULT_KERNELS)
    parser.add_argument("--sizes", nargs="+", type=int,
                        default=DEFAULT_SIZES)
    parser.add_argument("--repeats", type=int, default=7)
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write records as JSON (CI artifact)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the text table to FILE "
                             "(default: results/backend_numpy.txt when "
                             "that directory exists)")
    args = parser.parse_args(argv)

    lines = [f"{'kernel':10s} {'backend':12s} {'median us/call':>15s} "
             f"{'vs interpreter':>15s}"]
    records = []
    failures = []
    for name in args.kernels:
        for size in args.sizes:
            rows, fail = bench_one(name, size, args.repeats)
            records.extend(rows)
            timing = {r["backend"]: r["median_seconds"] for r in rows}
            for backend in timing:
                ratio = timing["interpreter"] / max(timing[backend], 1e-12)
                lines.append(
                    f"{name + ':' + str(size):10s} {backend:12s} "
                    f"{timing[backend] * 1e6:15.1f} {ratio:14.1f}x")
            if fail:
                failures.append(fail)

    table = "\n".join(lines)
    print(table)
    output = args.output
    if output is None and os.path.isdir("results"):
        output = os.path.join("results", "backend_numpy.txt")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write("[backend_numpy]  execution backends, median "
                         "seconds per call\n" + table + "\n")
        print(f"wrote {output}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(records, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json} ({len(records)} records)")

    for fail in failures:
        print(f"FAIL: {fail}")
    if failures:
        return 1
    print(f"OK: numpy backend >= {MIN_NUMPY_SPEEDUP:.0f}x faster than the "
          f"interpreter and all backends agree within {TOLERANCE:g}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
