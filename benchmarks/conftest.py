"""Shared fixtures for the benchmark suite (one target per paper figure/table).

Each benchmark regenerates one figure/table of the paper's evaluation and
writes the resulting series table to ``results/<name>.txt`` (flops/cycle vs.
problem size for SLinGen and every baseline), in addition to the
pytest-benchmark timing of the generator itself.
"""

import os

from _bootstrap import ensure_repro_importable

import pytest

RESULTS_DIR = os.path.join(ensure_repro_importable(), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def kernel_service(tmp_path_factory):
    """One shared kernel service for the whole benchmark session.

    Every figure/table routes generation through this service, so sizes
    repeated across figures (and options repeated across ablations) are
    cache hits instead of full pipeline re-runs.  The cache lives in a
    session-temporary directory; point ``REPRO_KERNEL_CACHE`` somewhere
    persistent to keep kernels across benchmark sessions.
    """
    from repro.service import DiskKernelStore, KernelService

    root = os.environ.get("REPRO_KERNEL_CACHE", "").strip() \
        or str(tmp_path_factory.mktemp("kernel-cache"))
    service = KernelService(store=DiskKernelStore(root=root))
    yield service
    snapshot = service.stats.snapshot()
    print(f"\n[kernel-service] {snapshot['requests']} requests, "
          f"{snapshot['hits']} hits, {snapshot['misses']} generated, "
          f"hit rate {snapshot['hit_rate']:.0%}")


def write_series(results_dir: str, name: str, text: str) -> None:
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
