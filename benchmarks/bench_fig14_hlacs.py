"""Figure 14: HLAC benchmarks (potrf, trsyl, trlya, trtri).

Each test regenerates one subplot: SLinGen-generated code vs. MKL,
ReLAPACK, (RECSY for trsyl), Eigen, icc, clang+Polly and Cl1ck+MKL over a
size sweep, reporting performance in flops/cycle.  The expected *shape*
(asserted here) is the paper's: SLinGen-generated single-source code wins
against both library-call-based and straightforward-C implementations, by
factors comparable to those reported in the paper.
"""

import pytest

from conftest import write_series
from repro.bench import generator_options, hlac_sizes, run_series


def _run(case_name, benchmark, results_dir, service, baselines=None):
    sizes = hlac_sizes()

    def build():
        return run_series(case_name, sizes, options=generator_options(),
                          validate=False, baselines=baselines,
                          service=service)

    series = benchmark.pedantic(build, rounds=1, iterations=1)
    table = series.format_table()
    write_series(results_dir, f"fig14_{case_name}", table)
    print("\n" + table)
    return series


@pytest.mark.benchmark(group="fig14")
def test_fig14a_potrf(benchmark, results_dir, kernel_service):
    series = _run("potrf", benchmark, results_dir, kernel_service)
    largest = series.points[-1].performance
    # SLinGen beats MKL, Eigen and straightforward C (paper: ~2x, ~3.8x, ~4.2x).
    assert largest["slingen"] > largest["mkl"]
    assert largest["slingen"] > largest["eigen"]
    assert largest["slingen"] > 1.5 * largest["icc"]
    # Cl1ck+MKL tracks MKL (library-call bound), staying below SLinGen.
    assert largest["slingen"] > largest["cl1ck-mkl-nb4"]


@pytest.mark.benchmark(group="fig14")
def test_fig14b_trsyl(benchmark, results_dir, kernel_service):
    series = _run("trsyl", benchmark, results_dir, kernel_service)
    largest = series.points[-1].performance
    assert largest["slingen"] > largest["mkl"]
    assert largest["slingen"] > largest["recsy"]
    assert largest["slingen"] > largest["icc"]


@pytest.mark.benchmark(group="fig14")
def test_fig14c_trlya(benchmark, results_dir, kernel_service):
    series = _run("trlya", benchmark, results_dir, kernel_service)
    largest = series.points[-1].performance
    assert largest["slingen"] > largest["mkl"]
    assert largest["slingen"] > largest["icc"]


@pytest.mark.benchmark(group="fig14")
def test_fig14d_trtri(benchmark, results_dir, kernel_service):
    series = _run("trtri", benchmark, results_dir, kernel_service)
    largest = series.points[-1].performance
    assert largest["slingen"] > largest["mkl"]
    assert largest["slingen"] > largest["eigen"]
    assert largest["slingen"] > largest["clang-polly"]
