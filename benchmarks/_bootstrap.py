"""One shared bootstrap for everything under ``benchmarks/``.

The benchmark scripts are runnable both standalone (``python
benchmarks/bench_numpy_backend.py``) and through pytest; either way they
must resolve the *in-tree* ``repro`` package -- the same one
``python -m repro.perf`` and the repo-root ``conftest.py`` resolve --
not whatever happens to be installed.  This module is that single
decision: it prepends the checkout's ``src`` directory to ``sys.path``
exactly like the repo-root ``conftest.py`` does, and every benchmark
script and fixture imports it instead of repeating the path logic.
"""

import os
import sys

#: The repository checkout this benchmarks/ directory belongs to.
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def ensure_repro_importable() -> str:
    """Make the in-tree ``repro`` package importable; returns the repo
    root (callers use it to locate ``results/`` and committed artifacts)."""
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    return REPO_ROOT


ensure_repro_importable()
