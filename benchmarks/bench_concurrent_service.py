"""Single-flight coalescing benchmark: duplicate load, one generation.

Simulates the serving hot spot: N clients ask for the *same* kernel at the
same instant (a popular workload going viral).  Without coalescing every
client that misses runs the full Stage 1-3 pipeline itself; with the
service's single-flight layer the first request becomes the leader and the
other N-1 block on its in-flight future, so the whole stampede costs one
generation.

Two phases per workload, each against a cold store:

* ``uncoalesced`` -- ``KernelService(single_flight=False)``: every thread
  generates independently (the pre-PR-4 behavior).
* ``coalesced``   -- the default service: the stampede is collapsed.

Asserts the coalesced run performs **exactly one** generation per workload
under 16-way duplicate load and at least 5x fewer generations than the
uncoalesced run in aggregate.  Run with::

    python benchmarks/bench_concurrent_service.py
    python benchmarks/bench_concurrent_service.py \
        --output results/service_concurrency.txt
"""

import argparse
import sys
import tempfile
import threading
import time

from _bootstrap import ensure_repro_importable

ensure_repro_importable()

CLIENTS = 16
WORKLOADS = ["potrf:4", "potrf:8", "trtri:8", "gemm:4"]


def stampede(workload: str, single_flight: bool, clients: int):
    """``clients`` threads request one workload against a cold store;
    returns ``(generations, wall_s, responses)``."""
    from repro.service import DiskKernelStore, KernelService, make_request

    root = tempfile.mkdtemp(prefix="repro_concurrency_bench_")
    service = KernelService(store=DiskKernelStore(root=root),
                            single_flight=single_flight)
    barrier = threading.Barrier(clients)
    responses = [None] * clients
    failures = []

    def client(idx: int) -> None:
        request = make_request(workload)
        barrier.wait()
        try:
            responses[idx] = service.generate(request)
        except Exception as exc:  # pragma: no cover - surfaced below
            failures.append(exc)

    threads = [threading.Thread(target=client, args=(idx,))
               for idx in range(clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - t0
    if failures:
        raise failures[0]
    return service.stats.generations, wall_s, responses


def run(output=None, clients: int = CLIENTS, workloads=WORKLOADS) -> int:
    lines = []

    def emit(text: str = "") -> None:
        lines.append(text)
        print(text)

    emit(f"# Single-flight coalescing under {clients}-way duplicate load")
    emit(f"# {clients} threads request the same workload against a cold "
         f"store; 'gens' counts")
    emit("# actual Stage 1-3 pipeline runs (KernelService stats).")
    emit()
    emit(f"{'workload':10s} {'mode':12s} {'gens':>5s} {'coalesced':>9s} "
         f"{'wall (ms)':>10s}")

    total_un, total_co = 0, 0
    ok = True
    for workload in workloads:
        gens_un, wall_un, _ = stampede(workload, single_flight=False,
                                       clients=clients)
        gens_co, wall_co, responses = stampede(workload, single_flight=True,
                                               clients=clients)
        coalesced = sum(1 for r in responses if r.coalesced)
        total_un += gens_un
        total_co += gens_co
        emit(f"{workload:10s} {'uncoalesced':12s} {gens_un:>5d} "
             f"{'-':>9s} {wall_un * 1e3:>10.1f}")
        emit(f"{workload:10s} {'coalesced':12s} {gens_co:>5d} "
             f"{coalesced:>9d} {wall_co * 1e3:>10.1f}")
        if gens_co != 1:
            emit(f"FAIL: {workload} coalesced run generated {gens_co}x "
                 f"(expected exactly 1)")
            ok = False
        if coalesced != clients - 1:
            emit(f"FAIL: {workload} expected {clients - 1} coalesced "
                 f"responses, saw {coalesced}")
            ok = False

    reduction = total_un / max(total_co, 1)
    emit()
    emit(f"total generations: {total_un} uncoalesced -> {total_co} "
         f"coalesced ({reduction:.1f}x fewer)")
    if reduction < 5:
        emit(f"FAIL: only {reduction:.1f}x fewer generations "
             f"(expected >= 5x)")
        ok = False
    emit("OK" if ok else "FAILED")

    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {output}")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure single-flight coalescing under duplicate "
                    "concurrent load.")
    parser.add_argument("--clients", type=int, default=CLIENTS,
                        help=f"concurrent identical requests per workload "
                             f"(default {CLIENTS})")
    parser.add_argument("--workloads", nargs="*", default=WORKLOADS,
                        metavar="SPEC")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the report to FILE")
    args = parser.parse_args(argv)
    return run(output=args.output, clients=args.clients,
               workloads=args.workloads)


if __name__ == "__main__":
    sys.exit(main())
