"""Verified-optimization benchmark: baseline vs CEGIS-accepted rewrites.

For each registry workload the CEGIS loop (:mod:`repro.cegis`) is run
into a throwaway fix bank, then the same program is generated twice --
once as the tuner would by default and once with the accepted rewrite
set enabled (``Options.verified_rewrites``) -- and both kernels are
executed and timed on every available backend.  The benchmark asserts
that the verified tier actually pays for its verification cost:

* every workload that accepted at least one rewrite must shrink the
  optimized LA program (fewer statements going into codegen), and
* at least one (workload, backend) pair must show a measured
  end-to-end speedup, i.e. the verified kernel's median time per call
  beats the baseline's.

Run with::

    python benchmarks/bench_verified_opt.py
        [--specs S ...] [--budget N] [--repeats N] [--output FILE]

The text table lands in ``results/verified_opt.txt`` when run from the
repository root.
"""

import argparse
import os
import statistics
import sys
import tempfile

from _bootstrap import ensure_repro_importable

ensure_repro_importable()

DEFAULT_SPECS = ["potrf:8", "kf:4x4", "trlya:4"]


def bench_spec(text: str, budget: int, repeats: int, bank):
    """CEGIS-verify one workload, then time baseline vs verified."""
    from repro.backend import compiler_available, make_executor
    from repro.cegis import optimize_program
    from repro.fuzz.oracle import make_inputs
    from repro.service.registry import build_case, parse_spec
    from repro.slingen import Options, SLinGen

    spec = parse_spec(text)
    case = build_case(spec)
    base = Options(annotate_code=False)
    outcome = optimize_program(case.program, base, budget=budget,
                               bank=bank, label=spec.label)

    baseline = SLinGen(base).generate_result(case.program)
    verified_options = bank.verified_options(outcome.key, base=base)
    verified = SLinGen(verified_options or base).generate_result(case.program)

    backends = ["interpreter", "numpy"]
    if compiler_available():
        backends.append("compiled")

    inputs = make_inputs(case.program, seed=17)
    rows = []
    for backend in backends:
        timing = {}
        for label, result in (("baseline", baseline),
                              ("verified", verified)):
            kernel = make_executor(result.function, backend=backend,
                                   c_code=result.c_code)
            timing[label] = statistics.median(
                kernel.time(inputs, repeats=repeats))
        rows.append({
            "spec": spec.label, "backend": backend,
            "baseline_s": timing["baseline"],
            "verified_s": timing["verified"],
            "speedup": timing["baseline"] / max(timing["verified"], 1e-12),
        })
    return {
        "spec": spec.label,
        "accepted": list(outcome.accepted),
        "refuted": [entry["id"] for entry in outcome.refuted],
        "baseline_stmts": len(baseline.basic_program.statements),
        "verified_stmts": len(verified.basic_program.statements),
        "rows": rows,
    }


def run(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--specs", nargs="+", default=DEFAULT_SPECS)
    parser.add_argument("--budget", type=int, default=4,
                        help="verifier input draws per candidate rewrite")
    parser.add_argument("--repeats", type=int, default=9)
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the text table to FILE (default: "
                             "results/verified_opt.txt when that "
                             "directory exists)")
    args = parser.parse_args(argv)

    from repro.cegis import FixBank

    lines = [f"{'workload':10s} {'backend':12s} {'baseline us':>12s} "
             f"{'verified us':>12s} {'speedup':>8s}   accepted rewrites"]
    failures = []
    best = None
    with tempfile.TemporaryDirectory() as scratch:
        bank = FixBank(root=os.path.join(scratch, "fixbank"))
        for text in args.specs:
            report = bench_spec(text, args.budget, args.repeats, bank)
            accepted = ",".join(report["accepted"]) or "-"
            for row in report["rows"]:
                lines.append(
                    f"{row['spec']:10s} {row['backend']:12s} "
                    f"{row['baseline_s'] * 1e6:12.2f} "
                    f"{row['verified_s'] * 1e6:12.2f} "
                    f"{row['speedup']:7.2f}x   {accepted}")
                if best is None or row["speedup"] > best["speedup"]:
                    best = row
            lines.append(
                f"{report['spec']:10s} {'(LA stmts)':12s} "
                f"{report['baseline_stmts']:12d} "
                f"{report['verified_stmts']:12d}           "
                f"refuted: {','.join(report['refuted']) or '-'}")
            if (report["accepted"]
                    and report["verified_stmts"]
                    >= report["baseline_stmts"]):
                failures.append(
                    f"{report['spec']}: accepted {accepted} but the "
                    f"optimized LA program did not shrink "
                    f"({report['baseline_stmts']} -> "
                    f"{report['verified_stmts']} statements)")

    if best is None or best["speedup"] <= 1.0:
        failures.append("no (workload, backend) pair showed a measured "
                        "speedup from the verified tier")

    table = "\n".join(lines)
    print(table)
    output = args.output
    if output is None and os.path.isdir("results"):
        output = os.path.join("results", "verified_opt.txt")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write("[verified_opt]  baseline vs CEGIS-verified "
                         "rewrites, median seconds per call\n"
                         + table + "\n")
        print(f"wrote {output}")

    for fail in failures:
        print(f"FAIL: {fail}")
    if failures:
        return 1
    print(f"OK: verified tier shrinks the optimized LA programs and "
          f"{best['spec']} runs {best['speedup']:.2f}x faster on "
          f"{best['backend']}")
    return 0


if __name__ == "__main__":
    sys.exit(run())
