"""Multi-process worker pool benchmark: throughput scaling + exactly-once.

Boots a real :class:`~repro.service.pool.WorkerPool` (pre-forked workers
sharing one listening socket, one disk store, and the cross-process lease
layer) and drives it over HTTP with ``ServiceClient`` threads.  Three
phases, each against a cold store:

* ``distinct``  -- every request is a different workload (no cache help):
  measures raw generation throughput and p50/p99 latency with 1 worker
  vs ``--workers`` workers.  On multi-core hosts asserts the pool is at
  least 2x faster; on a single-CPU host parallel speedup is physically
  impossible, so the ratio is reported but the gate is skipped (and says
  so in the output).
* ``duplicate`` -- ``--duplicate-clients`` threads stampede a handful of
  cold hot keys through the pool.  The append-only store journal
  (``REPRO_STORE_JOURNAL``) records one line per actual Stage 1-3
  generation commit, across *all* processes -- asserts exactly one
  generation per unique key (the cross-process single-flight guarantee).
* ``mixed``     -- a shuffled blend of duplicate and distinct requests:
  the realistic load; reports throughput, p50/p99, and generations.

Run with::

    python benchmarks/bench_multiworker.py
    python benchmarks/bench_multiworker.py \
        --output results/service_multiworker.txt

CI runs the reduced duplicate phase against an externally booted
``python -m repro.service serve --workers 2`` daemon::

    python benchmarks/bench_multiworker.py --phases duplicate \
        --url http://127.0.0.1:PORT --journal /tmp/journal.jsonl \
        --duplicate-clients 8
"""

import argparse
import json
import os
import random
import sys
import tempfile
import threading
import time

from _bootstrap import ensure_repro_importable

ensure_repro_importable()

WORKERS = 4
CLIENTS = 8
DUPLICATE_CLIENTS = 32
DISTINCT_WORKLOADS = [f"{name}:{size}"
                      for name in ("potrf", "trtri", "gemm", "trsm")
                      for size in (4, 5, 6, 7, 8, 9)]
HOT_WORKLOADS = ["potrf:6", "trtri:6", "gemm:6", "trsm:6"]


def effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def percentile(samples, pct: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def journal_counts(path):
    """Generations per key recorded by the cross-process store journal."""
    counts = {}
    if not os.path.exists(path):
        return counts
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                key = json.loads(line)["key"]
                counts[key] = counts.get(key, 0) + 1
    return counts


class PoolHarness:
    """One cold store + journal + worker pool, torn down after a phase."""

    def __init__(self, workers: int, max_inflight: int = 8):
        from repro.service import (DiskKernelStore, KernelService,
                                   LeaseManager, WorkerPool)

        self.root = tempfile.mkdtemp(prefix="repro_multiworker_bench_")
        self.journal = os.path.join(self.root, "journal.jsonl")
        store_root = os.path.join(self.root, "cache")
        journal = self.journal

        def factory():
            store = DiskKernelStore(root=store_root, journal=journal)
            return KernelService(
                store=store, leases=LeaseManager.for_store(store))

        self.pool = WorkerPool(factory, workers=workers, port=0,
                               max_inflight=max_inflight, quiet=True)

    def __enter__(self):
        from repro.service import ServiceClient
        self.pool.start()
        ServiceClient(self.pool.url).wait_healthy(timeout=30.0)
        return self

    def __exit__(self, *exc_info):
        self.pool.shutdown()


def drive(url: str, specs, clients: int):
    """``clients`` threads drain ``specs`` (pre-assigned round-robin)
    against ``url``; returns ``(wall_s, latencies_s)``."""
    from repro.service import ServiceClient

    barrier = threading.Barrier(clients)
    latencies = []
    lock = threading.Lock()
    failures = []

    def worker(idx: int) -> None:
        client = ServiceClient(url, timeout=600.0, busy_retries=40,
                               jitter_seed=idx)
        mine = specs[idx::clients]
        barrier.wait()
        for spec in mine:
            t0 = time.perf_counter()
            try:
                client.generate(spec=spec, include_code=False)
            except Exception as exc:  # pragma: no cover - surfaced below
                failures.append(exc)
                return
            elapsed = time.perf_counter() - t0
            with lock:
                latencies.append(elapsed)

    threads = [threading.Thread(target=worker, args=(idx,))
               for idx in range(clients)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - t0
    if failures:
        raise failures[0]
    return wall_s, latencies


def emit_load_row(emit, label: str, requests: int, wall_s: float,
                  latencies) -> float:
    throughput = requests / wall_s
    emit(f"{label:14s} {requests:>4d} {wall_s:>8.2f} {throughput:>9.2f} "
         f"{percentile(latencies, 50) * 1e3:>9.1f} "
         f"{percentile(latencies, 99) * 1e3:>9.1f}")
    return throughput


def phase_distinct(emit, workers: int, clients: int, workloads) -> bool:
    emit(f"## distinct-key load ({len(workloads)} unique workloads, "
         f"{clients} client threads)")
    emit(f"{'config':14s} {'reqs':>4s} {'wall(s)':>8s} {'req/s':>9s} "
         f"{'p50(ms)':>9s} {'p99(ms)':>9s}")
    throughputs = {}
    for nworkers in (1, workers):
        with PoolHarness(nworkers) as harness:
            wall_s, lat = drive(harness.pool.url, list(workloads), clients)
            gens = sum(journal_counts(harness.journal).values())
        label = f"workers={nworkers}"
        throughputs[nworkers] = emit_load_row(
            emit, label, len(workloads), wall_s, lat)
        if gens != len(workloads):
            emit(f"FAIL: workers={nworkers} distinct load ran {gens} "
                 f"generations (expected {len(workloads)})")
            return False
    ratio = throughputs[workers] / throughputs[1]
    cpus = effective_cpus()
    emit(f"speedup: {ratio:.2f}x with {workers} workers vs 1 "
         f"(host has {cpus} usable CPU{'s' if cpus != 1 else ''})")
    if cpus >= 2:
        if ratio < 2.0:
            emit(f"FAIL: expected >= 2x throughput with {workers} workers "
                 f"on a {cpus}-CPU host, measured {ratio:.2f}x")
            return False
    else:
        emit("SKIP: single-CPU host -- parallel speedup is physically "
             "impossible; scaling gate not applied (ratio above is "
             "informational)")
    return True


def phase_duplicate(emit, url, journal, workers: int, clients: int,
                    hot) -> bool:
    per_key = clients // len(hot)
    emit(f"## duplicate-key load ({clients} clients stampede "
         f"{len(hot)} cold keys, {per_key} callers each)")
    before = journal_counts(journal)
    specs = [spec for spec in hot for _ in range(per_key)]
    specs += hot[:clients - len(specs)]
    random.Random(0).shuffle(specs)
    wall_s, lat = drive(url, specs, clients)
    after = journal_counts(journal)
    emit(f"{'config':14s} {'reqs':>4s} {'wall(s)':>8s} {'req/s':>9s} "
         f"{'p50(ms)':>9s} {'p99(ms)':>9s}")
    emit_load_row(emit, f"workers={workers}", len(specs), wall_s, lat)
    ok = True
    new_counts = {key: after.get(key, 0) - before.get(key, 0)
                  for key in after}
    fresh = {key: count for key, count in new_counts.items() if count}
    emit(f"generations: {sum(fresh.values())} across "
         f"{len(fresh)} unique keys (journal: every store commit, "
         f"all processes)")
    if len(fresh) != len(hot):
        emit(f"FAIL: expected {len(hot)} unique keys generated, "
             f"saw {len(fresh)}")
        ok = False
    for key, count in sorted(fresh.items()):
        if count != 1:
            emit(f"FAIL: key {key[:12]}... generated {count}x "
                 f"(cross-process single-flight should make it exactly 1)")
            ok = False
    if ok:
        emit(f"OK: exactly one generation per unique key under "
             f"{clients}-way cross-process duplicate load")
    return ok


def phase_mixed(emit, workers: int, clients: int, distinct, hot) -> bool:
    dup_requests = [spec for spec in hot for _ in range(5)]
    specs = list(distinct[:len(dup_requests)]) + dup_requests
    random.Random(1).shuffle(specs)
    unique = len(set(specs))
    emit(f"## mixed load ({len(specs)} requests, {unique} unique keys, "
         f"{clients} client threads)")
    with PoolHarness(workers) as harness:
        wall_s, lat = drive(harness.pool.url, specs, clients)
        counts = journal_counts(harness.journal)
    emit(f"{'config':14s} {'reqs':>4s} {'wall(s)':>8s} {'req/s':>9s} "
         f"{'p50(ms)':>9s} {'p99(ms)':>9s}")
    emit_load_row(emit, f"workers={workers}", len(specs), wall_s, lat)
    gens = sum(counts.values())
    emit(f"generations: {gens} for {unique} unique keys")
    if gens != unique:
        emit(f"FAIL: mixed load ran {gens} generations for {unique} "
             f"unique keys (duplicates must coalesce)")
        return False
    return True


def run(output=None, workers: int = WORKERS, clients: int = CLIENTS,
        duplicate_clients: int = DUPLICATE_CLIENTS, phases=None,
        url=None, journal=None, distinct=None, hot=None) -> int:
    phases = phases or ["distinct", "duplicate", "mixed"]
    distinct = distinct if distinct is not None else DISTINCT_WORKLOADS
    hot = hot if hot is not None else HOT_WORKLOADS
    lines = []

    def emit(text: str = "") -> None:
        lines.append(text)
        print(text, flush=True)

    emit(f"# Multi-process worker pool: {workers} pre-forked workers, "
         f"one socket, one store")
    emit(f"# Cross-process single-flight via lockfile leases; "
         f"'generations' counted by the")
    emit(f"# append-only store journal (one line per Stage 1-3 commit, "
         f"any process).")
    emit()

    ok = True
    if "distinct" in phases:
        if url is not None:
            emit("FAIL: the distinct phase boots its own pools and cannot "
                 "run against --url")
            ok = False
        else:
            ok = phase_distinct(emit, workers, clients, distinct) and ok
        emit()
    if "duplicate" in phases:
        if url is not None:
            if not journal:
                emit("FAIL: --url mode needs --journal to count "
                     "generations")
                ok = False
            else:
                ok = phase_duplicate(emit, url, journal, workers,
                                     duplicate_clients, hot) and ok
        else:
            with PoolHarness(workers) as harness:
                ok = phase_duplicate(emit, harness.pool.url,
                                     harness.journal, workers,
                                     duplicate_clients, hot) and ok
        emit()
    if "mixed" in phases:
        if url is not None:
            emit("FAIL: the mixed phase boots its own pool and cannot "
                 "run against --url")
            ok = False
        else:
            ok = phase_mixed(emit, workers, clients, distinct, hot) and ok
        emit()

    emit("OK" if ok else "FAILED")
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {output}")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the pre-forked worker pool: distinct-key "
                    "throughput scaling, cross-process duplicate "
                    "coalescing, and mixed load.")
    parser.add_argument("--workers", type=int, default=WORKERS,
                        help=f"pool size for the scaled configs "
                             f"(default {WORKERS})")
    parser.add_argument("--clients", type=int, default=CLIENTS,
                        help=f"client threads for distinct/mixed phases "
                             f"(default {CLIENTS})")
    parser.add_argument("--duplicate-clients", type=int,
                        default=DUPLICATE_CLIENTS,
                        help=f"client threads for the duplicate stampede "
                             f"(default {DUPLICATE_CLIENTS})")
    parser.add_argument("--phases", nargs="*", default=None,
                        choices=["distinct", "duplicate", "mixed"],
                        help="subset of phases to run (default: all)")
    parser.add_argument("--url", default=None, metavar="URL",
                        help="drive an externally booted daemon instead of "
                             "an in-process pool (duplicate phase only)")
    parser.add_argument("--journal", default=None, metavar="FILE",
                        help="store journal of the external daemon "
                             "(required with --url)")
    parser.add_argument("--hot", nargs="*", default=None, metavar="SPEC",
                        help="hot workloads for the duplicate stampede")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the report to FILE")
    args = parser.parse_args(argv)
    return run(output=args.output, workers=args.workers,
               clients=args.clients,
               duplicate_clients=args.duplicate_clients,
               phases=args.phases, url=args.url, journal=args.journal,
               hot=args.hot)


if __name__ == "__main__":
    sys.exit(main())
